// infer_parity_test.cpp — the serving path (InferencePlan/Session) must
// agree with the training path's eval-mode forward: folded and unfolded
// plans within allclose, repeated runs bitwise identical, save/load round
// trips exact, and the steady state allocation-free. Also pins down
// set_training propagation through the composite modules the split relies
// on.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <span>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "eval/parity.h"

#include "core/band_cnn.h"
#include "core/inference.h"
#include "data/snapshot.h"
#include "core/joint_model.h"
#include "core/lc_classifier.h"
#include "infer/session.h"
#include "nn/model_io.h"
#include "nn/nn.h"
#include "tensor/gemm.h"
#include "tensor/thread_pool.h"

// Global allocation counter for the zero-alloc-after-warmup test. Only
// counts while armed, so gtest bookkeeping outside the measured window
// stays invisible.
namespace {
std::atomic<bool> g_count_allocs{false};
std::atomic<std::int64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace sne::core {
namespace {

constexpr std::int64_t kStamp = 36;  // smallest extent the trunk survives

BandCnnConfig small_cnn_config() {
  BandCnnConfig cfg;
  cfg.input_size = kStamp;
  return cfg;
}

// A few training-mode forward passes move the batch-norm running
// statistics off their init so folding is exercised on non-trivial
// values.
void warm_running_stats(BandCnn& cnn, Rng& rng) {
  cnn.set_training(true);
  for (int i = 0; i < 3; ++i) {
    const Tensor x =
        Tensor::rand_uniform({4, 2, kStamp, kStamp}, rng, -50.0f, 400.0f);
    (void)cnn.forward(x);
  }
  cnn.set_training(false);
}

TEST(InferParity, SessionMatchesEvalForwardUnfolded) {
  Rng rng(11);
  BandCnn cnn(small_cnn_config(), rng);
  warm_running_stats(cnn, rng);

  const Tensor x =
      Tensor::rand_uniform({5, 2, kStamp, kStamp}, rng, -50.0f, 400.0f);
  const Tensor ref = cnn.forward(x);

  SessionOptions opts;
  opts.fold_batchnorm = false;
  infer::InferenceSession session = make_session(cnn, opts);
  EXPECT_EQ(session.plan().num_folded(), 0u);
  const Tensor got = session.run(x);
  ASSERT_EQ(got.shape(), ref.shape());
  EXPECT_TRUE(got.allclose(ref, 1e-5f));
}

TEST(InferParity, SessionMatchesEvalForwardFolded) {
  Rng rng(12);
  BandCnn cnn(small_cnn_config(), rng);
  warm_running_stats(cnn, rng);

  const Tensor x =
      Tensor::rand_uniform({8, 2, kStamp, kStamp}, rng, -50.0f, 400.0f);
  const Tensor ref = cnn.forward(x);

  infer::InferenceSession session = make_session(cnn);  // folding on
  EXPECT_EQ(session.plan().num_folded(), 3u);           // three conv stages
  const Tensor got = session.run(x);
  ASSERT_EQ(got.shape(), ref.shape());
  EXPECT_TRUE(got.allclose(ref, 1e-3f));  // folding reassociates rounding
}

TEST(InferParity, ClassifierSessionMatchesEvalForward) {
  Rng rng(13);
  LcClassifierConfig cfg;
  LcClassifier clf(cfg, rng);
  clf.set_training(false);

  const Tensor x = Tensor::rand_uniform({7, cfg.input_dim}, rng, -2.f, 2.f);
  const Tensor ref = clf.forward(x);
  infer::InferenceSession session = make_session(clf);
  const Tensor got = session.run(x);
  ASSERT_EQ(got.shape(), ref.shape());
  EXPECT_TRUE(got.allclose(ref, 1e-5f));
}

TEST(InferParity, JointSessionMatchesEvalForward) {
  Rng rng(14);
  JointModelConfig jc;
  jc.cnn.input_size = kStamp;
  JointModel joint(jc, rng);
  {
    // Warm the CNN's running stats through the joint training path.
    const Tensor warm = Tensor::rand_uniform(
        {2, JointModel::input_dim(kStamp)}, rng, -50.0f, 400.0f);
    (void)joint.forward(warm);
  }
  joint.set_training(false);

  Tensor x = Tensor::rand_uniform({3, JointModel::input_dim(kStamp)}, rng,
                                  -50.0f, 400.0f);
  // Dates live in the trailing 5 slots of each sample; keep them in a
  // plausible normalized range.
  for (std::int64_t i = 0; i < x.extent(0); ++i) {
    float* row = x.data() + (i + 1) * (x.extent(1)) - 5;
    for (int b = 0; b < 5; ++b) row[b] = static_cast<float>(0.1 * (b + 1));
  }
  const Tensor ref = joint.forward(x);

  infer::JointSession session = make_session(joint);
  const Tensor got = session.run(x);
  ASSERT_EQ(got.shape(), ref.shape());
  EXPECT_TRUE(got.allclose(ref, 1e-3f));
}

TEST(InferParity, RepeatedRunsAreBitwiseIdentical) {
  Rng rng(15);
  BandCnn cnn(small_cnn_config(), rng);
  warm_running_stats(cnn, rng);

  const Tensor x =
      Tensor::rand_uniform({4, 2, kStamp, kStamp}, rng, -50.0f, 400.0f);
  infer::InferenceSession session = make_session(cnn);
  Tensor a;
  Tensor b;
  session.run(x, a);
  session.run(x, b);
  EXPECT_TRUE(a.equals(b));

  // A second session over a shared plan reproduces the same bits too.
  auto plan = compile_plan(cnn);
  infer::InferenceSession s1(plan);
  infer::InferenceSession s2(plan);
  EXPECT_TRUE(s1.run(x).equals(s2.run(x)));
}

TEST(InferParity, ModelIoRoundTripGivesIdenticalScores) {
  Rng rng(16);
  BandCnn cnn(small_cnn_config(), rng);
  warm_running_stats(cnn, rng);

  const std::string path = testing::TempDir() + "infer_parity_cnn.snet";
  nn::save_model(path, cnn);

  Rng other(99);  // different init: everything must come from the file
  BandCnn reloaded(small_cnn_config(), other);
  nn::load_model(path, reloaded);
  reloaded.set_training(false);

  const Tensor x =
      Tensor::rand_uniform({6, 2, kStamp, kStamp}, rng, -50.0f, 400.0f);
  infer::InferenceSession before = make_session(cnn);
  infer::InferenceSession after = make_session(reloaded);
  EXPECT_TRUE(before.run(x).equals(after.run(x)));
  std::remove(path.c_str());
}

TEST(InferParity, SetTrainingPropagatesThroughComposites) {
  Rng rng(17);
  JointModelConfig jc;
  jc.cnn.input_size = kStamp;
  JointModel joint(jc, rng);

  joint.set_training(false);
  EXPECT_FALSE(joint.is_training());
  EXPECT_FALSE(joint.band_cnn().is_training());
  EXPECT_FALSE(joint.classifier().is_training());
  const nn::Sequential& net = joint.band_cnn().net();
  for (std::size_t i = 0; i < net.size(); ++i) {
    EXPECT_FALSE(net.layer(i).is_training()) << "layer " << i;
  }

  joint.set_training(true);
  EXPECT_TRUE(joint.band_cnn().is_training());
  EXPECT_TRUE(joint.classifier().is_training());
  for (std::size_t i = 0; i < net.size(); ++i) {
    EXPECT_TRUE(net.layer(i).is_training()) << "layer " << i;
  }

  // Highway is a composite of two Linears; the flag must reach both.
  nn::Highway hw(8, rng);
  hw.set_training(false);
  EXPECT_FALSE(hw.transform().is_training());
  EXPECT_FALSE(hw.gate().is_training());
}

TEST(InferParity, FusedPreluSessionMatchesUnfusedBitwise) {
  Rng rng(19);
  BandCnn cnn(small_cnn_config(), rng);
  warm_running_stats(cnn, rng);

  const Tensor x =
      Tensor::rand_uniform({6, 2, kStamp, kStamp}, rng, -50.0f, 400.0f);

  SessionOptions unfused_opts;
  unfused_opts.fuse_prelu = false;
  infer::InferenceSession unfused = make_session(cnn, unfused_opts);
  infer::InferenceSession fused = make_session(cnn);  // fusion on by default

  EXPECT_EQ(unfused.plan().num_fused_prelu(), 0u);
  // One PReLU per conv stage rides the GEMM epilogue; the FC-stage PReLUs
  // follow Linears and stay standalone steps.
  EXPECT_EQ(fused.plan().num_fused_prelu(), 3u);
  EXPECT_EQ(fused.plan().num_steps() + 3, unfused.plan().num_steps());

  // The epilogue applies the same elementwise operations in the same order
  // as the standalone activation pass, so fusion changes no bits.
  EXPECT_TRUE(fused.run(x).equals(unfused.run(x)));
}

TEST(InferParity, PreluFusesIntoUnfoldedAndPointwiseConvs) {
  // Fusion does not require a folded BN: any Conv2d directly followed by a
  // channel-matched PReLU absorbs it — including the 1×1 fast path, whose
  // GEMM runs straight off the input with no column buffer.
  Rng rng(20);
  nn::Sequential net;
  net.emplace<nn::Conv2d>(2, 8, 3, rng);
  net.emplace<nn::PReLU>(8, 0.25f);
  net.emplace<nn::Conv2d>(8, 4, 1, rng);  // pointwise
  net.emplace<nn::PReLU>(4, 0.25f);
  net.set_training(false);

  const Shape sample{2, 10, 10};
  const Tensor x = Tensor::rand_uniform({5, 2, 10, 10}, rng, -2.0f, 2.0f);

  infer::InferenceSession fused(net, sample);
  EXPECT_EQ(fused.plan().num_folded(), 0u);
  EXPECT_EQ(fused.plan().num_fused_prelu(), 2u);
  EXPECT_EQ(fused.plan().num_steps(), 2u);

  infer::PlanOptions off;
  off.fuse_prelu = false;
  infer::InferenceSession unfused(net, sample, off);
  EXPECT_EQ(unfused.plan().num_fused_prelu(), 0u);
  EXPECT_EQ(unfused.plan().num_steps(), 4u);

  EXPECT_TRUE(fused.run(x).equals(unfused.run(x)));
}

TEST(InferParity, PlanValidatesShapesAtPlanTime) {
  Rng rng(21);
  // Layer-level: infer_shape mirrors the execution-path validation instead
  // of returning impossible non-positive extents.
  nn::Conv2d conv(2, 4, 5, rng);
  EXPECT_THROW(conv.infer_shape({1, 2, 3, 3}), std::invalid_argument);
  nn::MaxPool2d max_pool(2);
  EXPECT_THROW(max_pool.infer_shape({1, 2, 1, 1}), std::invalid_argument);
  nn::AvgPool2d avg_pool(2);
  EXPECT_THROW(avg_pool.infer_shape({1, 2, 1, 1}), std::invalid_argument);

  // Plan-level: a network that cannot run on the sample shape is rejected
  // when the plan is built, not when the first batch arrives.
  nn::Sequential net;
  net.emplace<nn::Conv2d>(2, 4, 5, rng);
  EXPECT_THROW(infer::InferencePlan(net, {2, 4, 4}), std::invalid_argument);
}

// ---- int8 lowering ----

// A calibrated int8 session for the small BandCnn, plus the fp32 bits to
// compare against. Calibration streams a few batches through a fresh fp32
// session, exactly as the CLI does.
struct QuantFixture {
  explicit QuantFixture(unsigned seed) : rng(seed), cnn(small_cnn_config(), rng) {
    warm_running_stats(cnn, rng);
    for (int i = 0; i < 3; ++i) {
      calib_batches.push_back(
          Tensor::rand_uniform({4, 2, kStamp, kStamp}, rng, -50.0f, 400.0f));
    }
    infer::InferenceSession fp32 = make_session(cnn);
    Tensor out;
    for (const Tensor& b : calib_batches) fp32.calibrate(b, out, table);
  }

  infer::InferenceSession int8_session() {
    SessionOptions opts;
    opts.precision = Precision::Int8;
    opts.calibration = &table;
    return make_session(cnn, opts);
  }

  Rng rng;
  BandCnn cnn;
  std::vector<Tensor> calib_batches;
  infer::CalibrationTable table;
};

TEST(Int8Parity, QuantizedSessionTracksFp32WithinTolerance) {
  QuantFixture fx(21);
  const Tensor x =
      Tensor::rand_uniform({6, 2, kStamp, kStamp}, fx.rng, -50.0f, 400.0f);
  infer::InferenceSession fp32 = make_session(fx.cnn);
  infer::InferenceSession int8 = fx.int8_session();
  const Tensor ref = fp32.run(x);
  const Tensor got = int8.run(x);
  ASSERT_EQ(got.shape(), ref.shape());

  // Quantization noise, not drift: the embeddings should agree to a few
  // percent of the activation scale, far looser than float parity but
  // bounded.
  float max_abs = 0.0f, ref_max = 0.0f;
  for (std::int64_t i = 0; i < ref.size(); ++i) {
    max_abs = std::max(max_abs, std::abs(got.data()[i] - ref.data()[i]));
    ref_max = std::max(ref_max, std::abs(ref.data()[i]));
  }
  EXPECT_GT(ref_max, 0.0f);
  EXPECT_LT(max_abs, 0.05f * ref_max)
      << "max|Δ|=" << max_abs << " vs max|ref|=" << ref_max;
}

TEST(Int8Parity, QuantizedSessionIsBitwiseInvariant) {
  QuantFixture fx(22);
  const Tensor x =
      Tensor::rand_uniform({5, 2, kStamp, kStamp}, fx.rng, -50.0f, 400.0f);
  infer::InferenceSession s1 = fx.int8_session();
  const Tensor first = s1.run(x);

  // Rerun in the same session, a fresh session, under a different thread
  // count, and on the scalar kernel tier: the int8 path's integer
  // accumulation plus the shared requant sequence make all of them
  // bitwise identical — a strictly stronger contract than fp32's
  // within-tier determinism.
  EXPECT_TRUE(s1.run(x).equals(first));
  infer::InferenceSession s2 = fx.int8_session();
  EXPECT_TRUE(s2.run(x).equals(first));

  set_num_threads(4);
  EXPECT_TRUE(s2.run(x).equals(first));
  set_num_threads(1);

  const GemmTier prev = gemm_tier();
  set_gemm_tier(GemmTier::Scalar);
  EXPECT_TRUE(s2.run(x).equals(first));
  set_gemm_tier(prev);
}

TEST(Int8Parity, CalibrationIsBatchOrderAndThreadCountInvariant) {
  QuantFixture fx(23);

  // Replay the same samples in reverse order and under a different thread
  // count: the table folds an order-independent max over a deterministic
  // fp32 path, so the recorded ranges must be byte-identical.
  infer::CalibrationTable reversed;
  {
    infer::InferenceSession fp32 = make_session(fx.cnn);
    Tensor out;
    set_num_threads(4);
    for (auto it = fx.calib_batches.rbegin(); it != fx.calib_batches.rend();
         ++it) {
      fp32.calibrate(*it, out, reversed);
    }
    set_num_threads(1);
  }
  ASSERT_EQ(reversed.step_max.size(), fx.table.step_max.size());
  EXPECT_EQ(reversed.batches, fx.table.batches);
  EXPECT_TRUE(reversed.input_max.equals(fx.table.input_max));
  EXPECT_TRUE(reversed.step_max.equals(fx.table.step_max));
}

TEST(Int8Parity, CalibrationFromSnapshotReplayMatchesLiveRender) {
  // The satellite contract of the calibration table: scales recorded from
  // a SnapshotDataset replay of the calibration set are byte-identical to
  // scales recorded from the live-rendered batches, at any thread count —
  // snapshot replay is bitwise-faithful and max-abs is order-independent,
  // so the int8 lowering cannot depend on which ingest path fed it.
  Rng rng(29);
  BandCnn cnn(small_cnn_config(), rng);
  warm_running_stats(cnn, rng);

  const nn::LazyDataset source(12, [](std::int64_t i) {
    Tensor x({2, kStamp, kStamp});
    for (std::int64_t k = 0; k < x.size(); ++k) {
      x[k] = static_cast<float>((i * 131 + k) % 449) - 50.0f;
    }
    return nn::Sample{std::move(x), Tensor({1}, static_cast<float>(i % 2))};
  });
  const std::string path = testing::TempDir() + "calib_replay.snap";
  data::write_snapshot(path, source, 4);
  const data::SnapshotDataset snap(path);

  std::vector<std::int64_t> order(12);
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<std::int64_t>(i);
  }

  const auto record = [&](const nn::Dataset& ds) {
    infer::InferenceSession session = make_session(cnn);
    infer::CalibrationTable table;
    Tensor out;
    for (std::int64_t first = 0; first < 12; first += 4) {
      session.calibrate(ds.get_batch(order, first, 4).x, out, table);
    }
    return table;
  };

  const infer::CalibrationTable live = record(source);
  set_num_threads(4);
  const infer::CalibrationTable replay = record(snap);
  set_num_threads(1);
  std::remove(path.c_str());

  EXPECT_EQ(live.batches, replay.batches);
  EXPECT_TRUE(live.input_max.equals(replay.input_max));
  EXPECT_TRUE(live.step_max.equals(replay.step_max));
}

TEST(Int8Parity, CalibrateRejectsNonFp32Session) {
  QuantFixture fx(24);
  infer::InferenceSession int8 = fx.int8_session();
  infer::CalibrationTable t;
  Tensor out;
  EXPECT_THROW(int8.calibrate(fx.calib_batches[0], out, t), std::logic_error);
}

TEST(Int8Parity, Int8PlanRequiresCalibration) {
  Rng rng(25);
  BandCnn cnn(small_cnn_config(), rng);
  warm_running_stats(cnn, rng);
  SessionOptions opts;
  opts.precision = Precision::Int8;
  EXPECT_THROW(make_session(cnn, opts), std::invalid_argument);
}

TEST(Int8Parity, QuantizedSteadyStateRunIsAllocationFree) {
  QuantFixture fx(26);
  const Tensor x =
      Tensor::rand_uniform({8, 2, kStamp, kStamp}, fx.rng, -50.0f, 400.0f);
  infer::InferenceSession session = fx.int8_session();
  Tensor out;
  session.run(x, out);  // warmup: arena + int8 scratch sized here
  session.run(x, out);

  g_alloc_count.store(0);
  g_count_allocs.store(true);
  session.run(x, out);
  g_count_allocs.store(false);
  EXPECT_EQ(g_alloc_count.load(), 0);
}

TEST(Int8Parity, JointCalibrationFactoryIsDeterministic) {
  Rng rng(27);
  JointModelConfig jc;
  jc.cnn.input_size = kStamp;
  JointModel joint(jc, rng);
  {
    const Tensor warm = Tensor::rand_uniform(
        {2, JointModel::input_dim(kStamp)}, rng, -50.0f, 400.0f);
    (void)joint.forward(warm);
  }
  joint.set_training(false);

  std::vector<Tensor> batches;
  for (int i = 0; i < 2; ++i) {
    Tensor x = Tensor::rand_uniform({3, JointModel::input_dim(kStamp)}, rng,
                                    -50.0f, 400.0f);
    for (std::int64_t s = 0; s < x.extent(0); ++s) {
      float* row = x.data() + (s + 1) * x.extent(1) - 5;
      for (int b = 0; b < 5; ++b) row[b] = static_cast<float>(0.1 * (b + 1));
    }
    batches.push_back(std::move(x));
  }

  const infer::JointCalibration t1 = calibrate(joint, batches);
  set_num_threads(4);
  const infer::JointCalibration t2 = calibrate(joint, batches);
  set_num_threads(1);
  EXPECT_TRUE(t1.cnn.input_max.equals(t2.cnn.input_max));
  EXPECT_TRUE(t1.cnn.step_max.equals(t2.cnn.step_max));
  EXPECT_TRUE(t1.classifier.input_max.equals(t2.classifier.input_max));
  EXPECT_TRUE(t1.classifier.step_max.equals(t2.classifier.step_max));

  // And the int8 joint session built from it is itself rerun-invariant.
  SessionOptions int8_opts;
  int8_opts.precision = Precision::Int8;
  int8_opts.joint_calibration = &t1;
  infer::JointSession session = make_session(joint, int8_opts);
  const Tensor first = session.run(batches[0]);
  EXPECT_TRUE(session.run(batches[0]).equals(first));
}

TEST(Int8Parity, JointAucStaysWithinQuantizationBudget) {
  // The acceptance gate of the whole int8 path, at joint-model scale:
  // score a few hundred samples at fp32 and int8 and require the ROC AUC
  // to move by no more than the repo's pinned budget of 1e-3. Labels are
  // synthesized from the fp32 scores' median, which makes the reference
  // AUC 1.0 and the delta a pure measure of quantization-induced rank
  // inversions near the decision boundary — the hardest case for the
  // budget, not the easiest.
  Rng rng(28);
  JointModelConfig jc;
  jc.cnn.input_size = kStamp;
  JointModel joint(jc, rng);
  {
    const Tensor warm = Tensor::rand_uniform(
        {2, JointModel::input_dim(kStamp)}, rng, -50.0f, 400.0f);
    (void)joint.forward(warm);
  }
  joint.set_training(false);

  const auto make_batch = [&](std::int64_t n) {
    Tensor x = Tensor::rand_uniform({n, JointModel::input_dim(kStamp)}, rng,
                                    -50.0f, 400.0f);
    for (std::int64_t s = 0; s < x.extent(0); ++s) {
      float* row = x.data() + (s + 1) * x.extent(1) - 5;
      for (int b = 0; b < 5; ++b) row[b] = static_cast<float>(0.1 * (b + 1));
    }
    return x;
  };

  std::vector<Tensor> calib;
  for (int i = 0; i < 3; ++i) calib.push_back(make_batch(8));
  const infer::JointCalibration table = calibrate(joint, calib);

  SessionOptions int8_opts;
  int8_opts.precision = Precision::Int8;
  int8_opts.joint_calibration = &table;
  infer::JointSession fp32 = make_session(joint);
  infer::JointSession int8 = make_session(joint, int8_opts);

  constexpr std::int64_t kSamples = 192;
  const Tensor batch = make_batch(kSamples);
  const Tensor ref = fp32.run(batch);
  const Tensor got = int8.run(batch);
  ASSERT_EQ(ref.size(), kSamples);
  ASSERT_EQ(got.size(), kSamples);

  std::vector<float> sorted(ref.data(), ref.data() + kSamples);
  std::nth_element(sorted.begin(), sorted.begin() + kSamples / 2,
                   sorted.end());
  const float median = sorted[kSamples / 2];
  std::vector<float> labels(kSamples);
  for (std::int64_t i = 0; i < kSamples; ++i) {
    labels[i] = ref.data()[i] > median ? 1.0f : 0.0f;
  }

  const eval::PrecisionParity parity = eval::precision_parity(
      std::span<const float>(ref.data(), kSamples),
      std::span<const float>(got.data(), kSamples), labels);
  EXPECT_DOUBLE_EQ(parity.auc_reference, 1.0);
  EXPECT_LE(std::abs(parity.auc_delta), 1e-3)
      << "auc fp32=" << parity.auc_reference
      << " int8=" << parity.auc_quantized
      << " max|Δscore|=" << parity.max_abs_diff;
}

TEST(InferParity, SteadyStateRunIsAllocationFree) {
  Rng rng(18);
  BandCnn cnn(small_cnn_config(), rng);
  warm_running_stats(cnn, rng);

  const Tensor x =
      Tensor::rand_uniform({16, 2, kStamp, kStamp}, rng, -50.0f, 400.0f);
  infer::InferenceSession session = make_session(cnn);
  Tensor out;
  session.run(x, out);  // warmup: arena + scratch sized here
  session.run(x, out);

  g_alloc_count.store(0);
  g_count_allocs.store(true);
  session.run(x, out);
  g_count_allocs.store(false);
  EXPECT_EQ(g_alloc_count.load(), 0);
}

}  // namespace
}  // namespace sne::core
