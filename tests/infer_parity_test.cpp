// infer_parity_test.cpp — the serving path (InferencePlan/Session) must
// agree with the training path's eval-mode forward: folded and unfolded
// plans within allclose, repeated runs bitwise identical, save/load round
// trips exact, and the steady state allocation-free. Also pins down
// set_training propagation through the composite modules the split relies
// on.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <stdexcept>
#include <string>

#include "core/band_cnn.h"
#include "core/inference.h"
#include "core/joint_model.h"
#include "core/lc_classifier.h"
#include "infer/session.h"
#include "nn/model_io.h"
#include "nn/nn.h"

// Global allocation counter for the zero-alloc-after-warmup test. Only
// counts while armed, so gtest bookkeeping outside the measured window
// stays invisible.
namespace {
std::atomic<bool> g_count_allocs{false};
std::atomic<std::int64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace sne::core {
namespace {

constexpr std::int64_t kStamp = 36;  // smallest extent the trunk survives

BandCnnConfig small_cnn_config() {
  BandCnnConfig cfg;
  cfg.input_size = kStamp;
  return cfg;
}

// A few training-mode forward passes move the batch-norm running
// statistics off their init so folding is exercised on non-trivial
// values.
void warm_running_stats(BandCnn& cnn, Rng& rng) {
  cnn.set_training(true);
  for (int i = 0; i < 3; ++i) {
    const Tensor x =
        Tensor::rand_uniform({4, 2, kStamp, kStamp}, rng, -50.0f, 400.0f);
    (void)cnn.forward(x);
  }
  cnn.set_training(false);
}

TEST(InferParity, SessionMatchesEvalForwardUnfolded) {
  Rng rng(11);
  BandCnn cnn(small_cnn_config(), rng);
  warm_running_stats(cnn, rng);

  const Tensor x =
      Tensor::rand_uniform({5, 2, kStamp, kStamp}, rng, -50.0f, 400.0f);
  const Tensor ref = cnn.forward(x);

  infer::PlanOptions opts;
  opts.fold_batchnorm = false;
  infer::InferenceSession session = make_session(cnn, opts);
  EXPECT_EQ(session.plan().num_folded(), 0u);
  const Tensor got = session.run(x);
  ASSERT_EQ(got.shape(), ref.shape());
  EXPECT_TRUE(got.allclose(ref, 1e-5f));
}

TEST(InferParity, SessionMatchesEvalForwardFolded) {
  Rng rng(12);
  BandCnn cnn(small_cnn_config(), rng);
  warm_running_stats(cnn, rng);

  const Tensor x =
      Tensor::rand_uniform({8, 2, kStamp, kStamp}, rng, -50.0f, 400.0f);
  const Tensor ref = cnn.forward(x);

  infer::InferenceSession session = make_session(cnn);  // folding on
  EXPECT_EQ(session.plan().num_folded(), 3u);           // three conv stages
  const Tensor got = session.run(x);
  ASSERT_EQ(got.shape(), ref.shape());
  EXPECT_TRUE(got.allclose(ref, 1e-3f));  // folding reassociates rounding
}

TEST(InferParity, ClassifierSessionMatchesEvalForward) {
  Rng rng(13);
  LcClassifierConfig cfg;
  LcClassifier clf(cfg, rng);
  clf.set_training(false);

  const Tensor x = Tensor::rand_uniform({7, cfg.input_dim}, rng, -2.f, 2.f);
  const Tensor ref = clf.forward(x);
  infer::InferenceSession session = make_session(clf);
  const Tensor got = session.run(x);
  ASSERT_EQ(got.shape(), ref.shape());
  EXPECT_TRUE(got.allclose(ref, 1e-5f));
}

TEST(InferParity, JointSessionMatchesEvalForward) {
  Rng rng(14);
  JointModelConfig jc;
  jc.cnn.input_size = kStamp;
  JointModel joint(jc, rng);
  {
    // Warm the CNN's running stats through the joint training path.
    const Tensor warm = Tensor::rand_uniform(
        {2, JointModel::input_dim(kStamp)}, rng, -50.0f, 400.0f);
    (void)joint.forward(warm);
  }
  joint.set_training(false);

  Tensor x = Tensor::rand_uniform({3, JointModel::input_dim(kStamp)}, rng,
                                  -50.0f, 400.0f);
  // Dates live in the trailing 5 slots of each sample; keep them in a
  // plausible normalized range.
  for (std::int64_t i = 0; i < x.extent(0); ++i) {
    float* row = x.data() + (i + 1) * (x.extent(1)) - 5;
    for (int b = 0; b < 5; ++b) row[b] = static_cast<float>(0.1 * (b + 1));
  }
  const Tensor ref = joint.forward(x);

  infer::JointSession session = make_session(joint);
  const Tensor got = session.run(x);
  ASSERT_EQ(got.shape(), ref.shape());
  EXPECT_TRUE(got.allclose(ref, 1e-3f));
}

TEST(InferParity, RepeatedRunsAreBitwiseIdentical) {
  Rng rng(15);
  BandCnn cnn(small_cnn_config(), rng);
  warm_running_stats(cnn, rng);

  const Tensor x =
      Tensor::rand_uniform({4, 2, kStamp, kStamp}, rng, -50.0f, 400.0f);
  infer::InferenceSession session = make_session(cnn);
  Tensor a;
  Tensor b;
  session.run(x, a);
  session.run(x, b);
  EXPECT_TRUE(a.equals(b));

  // A second session over a shared plan reproduces the same bits too.
  auto plan = compile_plan(cnn);
  infer::InferenceSession s1(plan);
  infer::InferenceSession s2(plan);
  EXPECT_TRUE(s1.run(x).equals(s2.run(x)));
}

TEST(InferParity, ModelIoRoundTripGivesIdenticalScores) {
  Rng rng(16);
  BandCnn cnn(small_cnn_config(), rng);
  warm_running_stats(cnn, rng);

  const std::string path = testing::TempDir() + "infer_parity_cnn.snet";
  nn::save_model(path, cnn);

  Rng other(99);  // different init: everything must come from the file
  BandCnn reloaded(small_cnn_config(), other);
  nn::load_model(path, reloaded);
  reloaded.set_training(false);

  const Tensor x =
      Tensor::rand_uniform({6, 2, kStamp, kStamp}, rng, -50.0f, 400.0f);
  infer::InferenceSession before = make_session(cnn);
  infer::InferenceSession after = make_session(reloaded);
  EXPECT_TRUE(before.run(x).equals(after.run(x)));
  std::remove(path.c_str());
}

TEST(InferParity, SetTrainingPropagatesThroughComposites) {
  Rng rng(17);
  JointModelConfig jc;
  jc.cnn.input_size = kStamp;
  JointModel joint(jc, rng);

  joint.set_training(false);
  EXPECT_FALSE(joint.is_training());
  EXPECT_FALSE(joint.band_cnn().is_training());
  EXPECT_FALSE(joint.classifier().is_training());
  const nn::Sequential& net = joint.band_cnn().net();
  for (std::size_t i = 0; i < net.size(); ++i) {
    EXPECT_FALSE(net.layer(i).is_training()) << "layer " << i;
  }

  joint.set_training(true);
  EXPECT_TRUE(joint.band_cnn().is_training());
  EXPECT_TRUE(joint.classifier().is_training());
  for (std::size_t i = 0; i < net.size(); ++i) {
    EXPECT_TRUE(net.layer(i).is_training()) << "layer " << i;
  }

  // Highway is a composite of two Linears; the flag must reach both.
  nn::Highway hw(8, rng);
  hw.set_training(false);
  EXPECT_FALSE(hw.transform().is_training());
  EXPECT_FALSE(hw.gate().is_training());
}

TEST(InferParity, FusedPreluSessionMatchesUnfusedBitwise) {
  Rng rng(19);
  BandCnn cnn(small_cnn_config(), rng);
  warm_running_stats(cnn, rng);

  const Tensor x =
      Tensor::rand_uniform({6, 2, kStamp, kStamp}, rng, -50.0f, 400.0f);

  infer::PlanOptions unfused_opts;
  unfused_opts.fuse_prelu = false;
  infer::InferenceSession unfused = make_session(cnn, unfused_opts);
  infer::InferenceSession fused = make_session(cnn);  // fusion on by default

  EXPECT_EQ(unfused.plan().num_fused_prelu(), 0u);
  // One PReLU per conv stage rides the GEMM epilogue; the FC-stage PReLUs
  // follow Linears and stay standalone steps.
  EXPECT_EQ(fused.plan().num_fused_prelu(), 3u);
  EXPECT_EQ(fused.plan().num_steps() + 3, unfused.plan().num_steps());

  // The epilogue applies the same elementwise operations in the same order
  // as the standalone activation pass, so fusion changes no bits.
  EXPECT_TRUE(fused.run(x).equals(unfused.run(x)));
}

TEST(InferParity, PreluFusesIntoUnfoldedAndPointwiseConvs) {
  // Fusion does not require a folded BN: any Conv2d directly followed by a
  // channel-matched PReLU absorbs it — including the 1×1 fast path, whose
  // GEMM runs straight off the input with no column buffer.
  Rng rng(20);
  nn::Sequential net;
  net.emplace<nn::Conv2d>(2, 8, 3, rng);
  net.emplace<nn::PReLU>(8, 0.25f);
  net.emplace<nn::Conv2d>(8, 4, 1, rng);  // pointwise
  net.emplace<nn::PReLU>(4, 0.25f);
  net.set_training(false);

  const Shape sample{2, 10, 10};
  const Tensor x = Tensor::rand_uniform({5, 2, 10, 10}, rng, -2.0f, 2.0f);

  infer::InferenceSession fused(net, sample);
  EXPECT_EQ(fused.plan().num_folded(), 0u);
  EXPECT_EQ(fused.plan().num_fused_prelu(), 2u);
  EXPECT_EQ(fused.plan().num_steps(), 2u);

  infer::PlanOptions off;
  off.fuse_prelu = false;
  infer::InferenceSession unfused(net, sample, off);
  EXPECT_EQ(unfused.plan().num_fused_prelu(), 0u);
  EXPECT_EQ(unfused.plan().num_steps(), 4u);

  EXPECT_TRUE(fused.run(x).equals(unfused.run(x)));
}

TEST(InferParity, PlanValidatesShapesAtPlanTime) {
  Rng rng(21);
  // Layer-level: infer_shape mirrors the execution-path validation instead
  // of returning impossible non-positive extents.
  nn::Conv2d conv(2, 4, 5, rng);
  EXPECT_THROW(conv.infer_shape({1, 2, 3, 3}), std::invalid_argument);
  nn::MaxPool2d max_pool(2);
  EXPECT_THROW(max_pool.infer_shape({1, 2, 1, 1}), std::invalid_argument);
  nn::AvgPool2d avg_pool(2);
  EXPECT_THROW(avg_pool.infer_shape({1, 2, 1, 1}), std::invalid_argument);

  // Plan-level: a network that cannot run on the sample shape is rejected
  // when the plan is built, not when the first batch arrives.
  nn::Sequential net;
  net.emplace<nn::Conv2d>(2, 4, 5, rng);
  EXPECT_THROW(infer::InferencePlan(net, {2, 4, 4}), std::invalid_argument);
}

TEST(InferParity, SteadyStateRunIsAllocationFree) {
  Rng rng(18);
  BandCnn cnn(small_cnn_config(), rng);
  warm_running_stats(cnn, rng);

  const Tensor x =
      Tensor::rand_uniform({16, 2, kStamp, kStamp}, rng, -50.0f, 400.0f);
  infer::InferenceSession session = make_session(cnn);
  Tensor out;
  session.run(x, out);  // warmup: arena + scratch sized here
  session.run(x, out);

  g_alloc_count.store(0);
  g_count_allocs.store(true);
  session.run(x, out);
  g_count_allocs.store(false);
  EXPECT_EQ(g_alloc_count.load(), 0);
}

}  // namespace
}  // namespace sne::core
