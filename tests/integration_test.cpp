// integration_test.cpp — end-to-end behaviour at miniature scale: the
// flux CNN learns on rendered stamps, the classifier separates classes on
// light-curve features, the pre-train → fine-tune hand-off works, and the
// whole pipeline is deterministic in its seeds.
#include <gtest/gtest.h>

#include "core/band_cnn.h"
#include "core/joint_model.h"
#include "core/lc_classifier.h"
#include "core/lc_features.h"
#include "core/pipeline.h"
#include "eval/roc.h"
#include "nn/nn.h"

namespace sne {
namespace {

sim::SnDataset::Config tiny_config(std::int64_t n, std::uint64_t seed) {
  sim::SnDataset::Config cfg;
  cfg.num_samples = n;
  cfg.seed = seed;
  cfg.catalog.count = 200;
  return cfg;
}

std::vector<std::int64_t> range_indices(std::int64_t lo, std::int64_t hi) {
  std::vector<std::int64_t> idx;
  for (std::int64_t i = lo; i < hi; ++i) idx.push_back(i);
  return idx;
}

TEST(Integration, FluxCnnLossDecreasesOnRealStamps) {
  const sim::SnDataset data = sim::SnDataset::build(tiny_config(6, 42));
  auto items = core::enumerate_flux_pairs(data, range_indices(0, 6));
  items.resize(60);  // keep the test fast: 60 pairs
  const nn::LazyDataset train =
      core::make_flux_pair_dataset(data, items, 36);

  Rng rng(1);
  core::BandCnnConfig cfg;
  cfg.input_size = 36;
  cfg.conv_channels = {4, 6, 8};
  cfg.fc_hidden = {16, 8};
  core::BandCnn cnn(cfg, rng);
  nn::Adam opt(cnn.params(), 2e-3f);
  nn::Trainer trainer(cnn, opt, nn::mse_loss);

  nn::TrainConfig tc;
  tc.epochs = 4;
  tc.batch_size = 10;
  const auto history = trainer.fit(train, nullptr, tc);
  EXPECT_LT(history.back().train_loss, history.front().train_loss);
  // From a ~25.5 bias start against targets in [19, 32], even a few
  // epochs should reach single-digit mag² loss.
  EXPECT_LT(history.back().train_loss, 12.0f);
}

TEST(Integration, LcClassifierSeparatesOnGroundTruthFeatures) {
  const sim::SnDataset data = sim::SnDataset::build(tiny_config(300, 77));
  const auto train_idx = range_indices(0, 240);
  const auto test_idx = range_indices(240, 300);

  core::FeatureConfig fc;
  fc.epochs = 1;
  const nn::LazyDataset train =
      core::make_lc_feature_dataset(data, train_idx, fc);
  const nn::LazyDataset test =
      core::make_lc_feature_dataset(data, test_idx, fc);

  Rng rng(2);
  core::LcClassifierConfig cc;
  cc.input_dim = 10;
  cc.hidden_units = 32;
  core::LcClassifier clf(cc, rng);
  nn::Adam opt(clf.params(), 3e-3f);
  nn::Trainer trainer(clf, opt, nn::bce_with_logits_loss,
                      nn::binary_accuracy);

  nn::TrainConfig tc;
  tc.epochs = 30;
  tc.batch_size = 32;
  trainer.fit(train, nullptr, tc);

  const Tensor scores = trainer.predict(test);
  std::vector<float> s(scores.data(), scores.data() + scores.size());
  std::vector<float> labels;
  for (const std::int64_t i : test_idx) {
    labels.push_back(data.is_ia(i) ? 1.0f : 0.0f);
  }
  EXPECT_GT(eval::auc(s, labels), 0.80);
}

TEST(Integration, FineTuneStartsFromPretrainedQuality) {
  // The paper's recipe: pre-train the flux CNN and the classifier
  // separately, transplant both into the joint model — before any joint
  // training the assembled model should already classify better than
  // chance on its training samples.
  const sim::SnDataset data = sim::SnDataset::build(tiny_config(60, 11));
  const auto train_idx = range_indices(0, 60);

  core::BandCnnConfig cnn_cfg;
  cnn_cfg.input_size = 36;
  cnn_cfg.conv_channels = {4, 6, 8};
  cnn_cfg.fc_hidden = {16, 8};

  // Pre-train the flux CNN on this dataset's pairs.
  Rng rng(3);
  core::BandCnn cnn(cnn_cfg, rng);
  {
    auto items = core::enumerate_flux_pairs(data, train_idx);
    items.resize(240);
    const nn::LazyDataset pairs =
        core::make_flux_pair_dataset(data, items, 36);
    nn::Adam opt(cnn.params(), 2e-3f);
    nn::Trainer trainer(cnn, opt, nn::mse_loss);
    nn::TrainConfig tc;
    tc.epochs = 5;
    tc.batch_size = 16;
    trainer.fit(pairs, nullptr, tc);
  }

  // Pre-train the classifier on ground-truth features.
  core::LcClassifierConfig cc;
  cc.input_dim = 10;
  cc.hidden_units = 24;
  Rng rng2(4);
  core::LcClassifier clf(cc, rng2);
  {
    const nn::LazyDataset train =
        core::make_lc_feature_dataset(data, train_idx, {});
    nn::Adam opt(clf.params(), 3e-3f);
    nn::Trainer trainer(clf, opt, nn::bce_with_logits_loss);
    nn::TrainConfig tc;
    tc.epochs = 25;
    tc.batch_size = 32;
    trainer.fit(train, nullptr, tc);
  }

  core::JointModelConfig jc;
  jc.cnn = cnn_cfg;
  jc.classifier = cc;
  Rng rng3(5);
  core::JointModel joint(jc, rng3);
  core::init_joint_from_pretrained(joint, cnn, clf);

  const nn::LazyDataset eval_set =
      core::make_joint_dataset(data, train_idx, 0, 36, {});
  joint.set_training(false);
  std::vector<float> scores;
  std::vector<float> labels;
  for (std::int64_t k = 0; k < eval_set.size(); ++k) {
    const nn::Sample s = eval_set.get(k);
    const Tensor logit = joint.forward(s.x.reshaped({1, s.x.size()}));
    scores.push_back(logit[0]);
    labels.push_back(s.y[0]);
  }
  EXPECT_GT(eval::auc(scores, labels), 0.55);
}

TEST(Integration, EndToEndDeterminism) {
  auto run = []() -> float {
    const sim::SnDataset data = sim::SnDataset::build(tiny_config(40, 123));
    const nn::LazyDataset train =
        core::make_lc_feature_dataset(data, range_indices(0, 40), {});
    Rng rng(9);
    core::LcClassifierConfig cc;
    cc.hidden_units = 16;
    core::LcClassifier clf(cc, rng);
    nn::Adam opt(clf.params(), 1e-3f);
    nn::Trainer trainer(clf, opt, nn::bce_with_logits_loss);
    nn::TrainConfig tc;
    tc.epochs = 5;
    return trainer.fit(train, nullptr, tc).back().train_loss;
  };
  EXPECT_EQ(run(), run());
}

TEST(Integration, MoreEpochFeaturesNeverHurtMuch) {
  // Fig. 10's qualitative claim at miniature scale: 4-epoch features give
  // at least roughly the single-epoch AUC.
  const sim::SnDataset data = sim::SnDataset::build(tiny_config(300, 21));
  const auto train_idx = range_indices(0, 240);
  const auto test_idx = range_indices(240, 300);

  auto train_auc = [&](std::int64_t epochs) {
    core::FeatureConfig fc;
    fc.epochs = epochs;
    const nn::LazyDataset train =
        core::make_lc_feature_dataset(data, train_idx, fc);
    const nn::LazyDataset test =
        core::make_lc_feature_dataset(data, test_idx, fc);
    Rng rng(31);
    core::LcClassifierConfig cc;
    cc.input_dim = core::feature_dim(fc);
    cc.hidden_units = 32;
    core::LcClassifier clf(cc, rng);
    nn::Adam opt(clf.params(), 3e-3f);
    nn::Trainer trainer(clf, opt, nn::bce_with_logits_loss);
    nn::TrainConfig tc;
    tc.epochs = 25;
    tc.batch_size = 32;
    trainer.fit(train, nullptr, tc);
    const Tensor scores = trainer.predict(test);
    std::vector<float> s(scores.data(), scores.data() + scores.size());
    std::vector<float> labels;
    for (const std::int64_t i : test_idx) {
      labels.push_back(data.is_ia(i) ? 1.0f : 0.0f);
    }
    return eval::auc(s, labels);
  };

  const double auc1 = train_auc(1);
  const double auc4 = train_auc(4);
  EXPECT_GT(auc4, auc1 - 0.1);
}

}  // namespace
}  // namespace sne
