// nn_gradcheck_test.cpp — every hand-written backward pass is verified
// against central finite differences. This suite is the foundation the
// no-autograd design rests on.
#include <gtest/gtest.h>

#include "core/band_cnn.h"
#include "core/lc_classifier.h"
#include "core/pixel_transform.h"
#include "nn/nn.h"

namespace sne::nn {
namespace {

void expect_gradients_ok(Module& m, const Tensor& x, std::uint64_t seed = 7,
                         float eps = 1e-2f, float tol = 3e-2f) {
  Rng rng(seed);
  const GradCheckResult r = check_gradients(m, x, rng, eps, tol);
  EXPECT_TRUE(r.passed) << "worst=" << r.worst_param
                        << " rel=" << r.max_rel_error
                        << " abs=" << r.max_abs_error;
}

TEST(GradCheck, Linear) {
  Rng rng(1);
  Linear layer(5, 3, rng);
  expect_gradients_ok(layer, Tensor::randn({4, 5}, rng));
}

TEST(GradCheck, Conv2dNoPad) {
  Rng rng(2);
  Conv2d conv(2, 3, 3, rng);
  expect_gradients_ok(conv, Tensor::randn({2, 2, 6, 6}, rng));
}

TEST(GradCheck, Conv2dPaddedStride2) {
  Rng rng(3);
  Conv2d conv(1, 2, 3, rng, 2, 1);
  expect_gradients_ok(conv, Tensor::randn({2, 1, 7, 7}, rng));
}

TEST(GradCheck, BatchNorm1dTraining) {
  Rng rng(4);
  BatchNorm1d bn(3);
  expect_gradients_ok(bn, Tensor::randn({6, 3}, rng));
}

TEST(GradCheck, BatchNorm2dTraining) {
  Rng rng(5);
  BatchNorm2d bn(2);
  expect_gradients_ok(bn, Tensor::randn({3, 2, 4, 4}, rng));
}

TEST(GradCheck, PReLU) {
  Rng rng(6);
  PReLU act(3);
  expect_gradients_ok(act, Tensor::randn({4, 3, 2, 2}, rng));
}

TEST(GradCheck, Sigmoid) {
  Rng rng(7);
  Sigmoid act;
  expect_gradients_ok(act, Tensor::randn({3, 4}, rng));
}

TEST(GradCheck, TanhLayer) {
  Rng rng(8);
  Tanh act;
  expect_gradients_ok(act, Tensor::randn({3, 4}, rng));
}

TEST(GradCheck, MaxPool) {
  Rng rng(9);
  MaxPool2d pool(2);
  // Well-separated values so the argmax does not flip under ±eps.
  Tensor x = Tensor::randn({2, 1, 4, 4}, rng);
  x *= 10.0f;
  expect_gradients_ok(pool, x);
}

TEST(GradCheck, AvgPool) {
  Rng rng(10);
  AvgPool2d pool(2);
  expect_gradients_ok(pool, Tensor::randn({2, 1, 4, 4}, rng));
}

TEST(GradCheck, Highway) {
  Rng rng(11);
  Highway hw(4, rng);
  expect_gradients_ok(hw, Tensor::randn({3, 4}, rng));
}

TEST(GradCheck, GruBptt) {
  Rng rng(12);
  Gru gru(3, 4, rng);
  expect_gradients_ok(gru, Tensor::randn({2, 4, 3}, rng));
}

TEST(GradCheck, LstmBptt) {
  Rng rng(121);
  Lstm lstm(3, 4, rng);
  expect_gradients_ok(lstm, Tensor::randn({2, 4, 3}, rng));
}

TEST(GradCheck, SequentialMlp) {
  Rng rng(13);
  Sequential net;
  net.emplace<Linear>(4, 6, rng);
  net.emplace<PReLU>(6);
  net.emplace<Linear>(6, 2, rng);
  // Loose tolerance: pre-activations that happen to sit within ±eps of the
  // PReLU kink make the central difference straddle two slopes.
  expect_gradients_ok(net, Tensor::randn({3, 4}, rng), /*seed=*/7,
                      /*eps=*/1e-2f, /*tol=*/6e-2f);
}

TEST(GradCheck, ConvBnPreluPoolStack) {
  Rng rng(14);
  Sequential net;
  net.emplace<Conv2d>(1, 2, 3, rng);
  net.emplace<BatchNorm2d>(2);
  net.emplace<PReLU>(2);
  net.emplace<MaxPool2d>(2);
  net.emplace<Flatten>();
  net.emplace<Linear>(2 * 2 * 2, 1, rng);
  Tensor x = Tensor::randn({2, 1, 6, 6}, rng);
  x *= 3.0f;  // separate pool maxima
  expect_gradients_ok(net, x);
}

TEST(GradCheck, DiffSignedLogCrop) {
  Rng rng(15);
  core::DiffSignedLogCrop t(4);
  expect_gradients_ok(t, Tensor::randn({2, 2, 6, 6}, rng));
}

TEST(GradCheck, RawDiffCrop) {
  Rng rng(16);
  core::RawDiffCrop t(4);
  expect_gradients_ok(t, Tensor::randn({2, 2, 6, 6}, rng));
}

TEST(GradCheck, TinyBandCnn) {
  // Smallest input that survives three conv/pool stages (kernel 3).
  // Average pooling is used here because max-pool argmax flips under the
  // finite-difference perturbation make the FD estimate discontinuous;
  // the max-pool backward itself is verified in GradCheck.MaxPool and the
  // full conv→bn→prelu→maxpool stack in ConvBnPreluPoolStack.
  Rng rng(17);
  core::BandCnnConfig cfg;
  cfg.input_size = 22;
  cfg.kernel = 3;
  cfg.conv_channels = {2, 2, 2};
  cfg.fc_hidden = {4, 4};
  cfg.pool = core::PoolKind::Average;
  core::BandCnn cnn(cfg, rng);
  Tensor x = Tensor::randn({2, 2, 22, 22}, rng);
  x *= 5.0f;
  expect_gradients_ok(cnn, x, /*seed=*/18, /*eps=*/3e-3f, /*tol=*/8e-2f);
}

TEST(GradCheck, LcClassifier) {
  Rng rng(19);
  core::LcClassifierConfig cfg;
  cfg.input_dim = 10;
  cfg.hidden_units = 8;
  core::LcClassifier clf(cfg, rng);
  expect_gradients_ok(clf, Tensor::randn({3, 10}, rng));
}

}  // namespace
}  // namespace sne::nn
