// nn_layers_test.cpp — forward-pass semantics of every layer: shapes,
// hand-computed values, mode switching, and parameter bookkeeping.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "nn/nn.h"

namespace sne::nn {
namespace {

TEST(Linear, KnownValues) {
  Rng rng(1);
  Linear layer(2, 2, rng);
  // W = [[1, 2], [3, 4]], b = [10, 20].
  layer.weight().value = Tensor({2, 2}, {1, 2, 3, 4});
  layer.bias().value = Tensor({2}, {10, 20});
  const Tensor y = layer.forward(Tensor({1, 2}, {5, 6}));
  EXPECT_FLOAT_EQ(y.at(0, 0), 1 * 5 + 2 * 6 + 10);
  EXPECT_FLOAT_EQ(y.at(0, 1), 3 * 5 + 4 * 6 + 20);
}

TEST(Linear, BatchShape) {
  Rng rng(2);
  Linear layer(8, 3, rng);
  const Tensor y = layer.forward(Tensor::randn({7, 8}, rng));
  EXPECT_EQ(y.shape(), (Shape{7, 3}));
}

TEST(Linear, RejectsWrongWidth) {
  Rng rng(3);
  Linear layer(4, 2, rng);
  EXPECT_THROW(layer.forward(Tensor({1, 5})), std::invalid_argument);
}

TEST(Linear, BackwardBeforeForwardThrows) {
  Rng rng(3);
  Linear layer(4, 2, rng);
  EXPECT_THROW(layer.backward(Tensor({1, 2})), std::logic_error);
}

TEST(Linear, ParamCountAndZeroGrad) {
  Rng rng(4);
  Linear layer(10, 5, rng);
  EXPECT_EQ(layer.num_params(), 10 * 5 + 5);
  layer.forward(Tensor::randn({2, 10}, rng));
  layer.backward(Tensor::randn({2, 5}, rng));
  float grad_norm = 0.0f;
  for (Param* p : layer.params()) grad_norm += p->grad.l2_norm();
  EXPECT_GT(grad_norm, 0.0f);
  layer.zero_grad();
  for (Param* p : layer.params()) EXPECT_FLOAT_EQ(p->grad.l2_norm(), 0.0f);
}

TEST(Conv2d, OutputShape) {
  Rng rng(5);
  Conv2d conv(2, 4, 3, rng);
  const Tensor y = conv.forward(Tensor::randn({3, 2, 8, 8}, rng));
  EXPECT_EQ(y.shape(), (Shape{3, 4, 6, 6}));
}

TEST(Conv2d, PaddedSameShape) {
  Rng rng(6);
  Conv2d conv(1, 1, 3, rng, 1, 1);
  const Tensor y = conv.forward(Tensor::randn({1, 1, 5, 5}, rng));
  EXPECT_EQ(y.shape(), (Shape{1, 1, 5, 5}));
}

TEST(Conv2d, IdentityKernel) {
  Rng rng(7);
  Conv2d conv(1, 1, 1, rng);
  conv.params()[0]->value = Tensor({1, 1}, {2.0f});  // weight
  conv.params()[1]->value = Tensor({1}, {1.0f});     // bias
  const Tensor x({1, 1, 2, 2}, {1, 2, 3, 4});
  const Tensor y = conv.forward(x);
  EXPECT_TRUE(y.allclose(Tensor({1, 1, 2, 2}, {3, 5, 7, 9})));
}

TEST(Conv2d, AveragingKernel) {
  Rng rng(8);
  Conv2d conv(1, 1, 2, rng);
  conv.params()[0]->value = Tensor({1, 4}, 0.25f);
  conv.params()[1]->value.zero();
  const Tensor x({1, 1, 2, 2}, {1, 2, 3, 4});
  const Tensor y = conv.forward(x);
  EXPECT_EQ(y.shape(), (Shape{1, 1, 1, 1}));
  EXPECT_FLOAT_EQ(y[0], 2.5f);
}

TEST(Conv2d, KernelLargerThanInputThrows) {
  Rng rng(9);
  Conv2d conv(1, 1, 5, rng);
  EXPECT_THROW(conv.forward(Tensor({1, 1, 3, 3})), std::invalid_argument);
}

TEST(MaxPool2d, SelectsMaxima) {
  MaxPool2d pool(2);
  const Tensor x({1, 1, 4, 4},
                 {1, 2, 0, 0, 3, 4, 0, 9, 0, 0, 5, 6, 0, 1, 7, 8});
  const Tensor y = pool.forward(x);
  EXPECT_TRUE(y.allclose(Tensor({1, 1, 2, 2}, {4, 9, 1, 8})));
}

TEST(MaxPool2d, BackwardRoutesToArgmax) {
  MaxPool2d pool(2);
  const Tensor x({1, 1, 2, 2}, {1, 5, 2, 3});
  pool.forward(x);
  const Tensor gx = pool.backward(Tensor({1, 1, 1, 1}, {10.0f}));
  EXPECT_TRUE(gx.allclose(Tensor({1, 1, 2, 2}, {0, 10, 0, 0})));
}

TEST(MaxPool2d, NanWindowKeepsGradientInsideWindow) {
  // Regression: best_idx used to start at global element 0, so a window
  // with no element comparing > -inf (all NaN) routed its gradient to the
  // first element of the *first sample* — a cross-sample leak.
  const float nan = std::numeric_limits<float>::quiet_NaN();
  MaxPool2d pool(2);
  // Sample 0 is finite; sample 1's only window is all-NaN.
  const Tensor x({2, 1, 2, 2}, {1, 2, 3, 4, nan, nan, nan, nan});
  const Tensor y = pool.forward(x);
  EXPECT_FLOAT_EQ(y[0], 4.0f);
  EXPECT_TRUE(std::isnan(y[1]));
  const Tensor gx = pool.backward(Tensor({2, 1, 1, 1}, {10.0f, 20.0f}));
  // Sample 0's gradient lands on its own argmax, with no foreign 20 added.
  EXPECT_FLOAT_EQ(gx[0], 0.0f);
  EXPECT_FLOAT_EQ(gx[3], 10.0f);
  // Sample 1's gradient stays inside sample 1 (routed to its first
  // window element).
  EXPECT_FLOAT_EQ(gx[4], 20.0f);
  EXPECT_FLOAT_EQ(gx[5], 0.0f);
}

TEST(MaxPool2d, NanCandidatesAreSkipped) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  MaxPool2d pool(2);
  // NaN in the window (including the seed position) never wins; the max
  // over the finite elements is selected.
  const Tensor x({1, 1, 2, 4}, {nan, 2, 5, nan, 1, 2, 3, 4});
  const Tensor y = pool.forward(x);
  EXPECT_FLOAT_EQ(y[0], 2.0f);
  EXPECT_FLOAT_EQ(y[1], 5.0f);
  const Tensor gx = pool.backward(Tensor({1, 1, 1, 2}, {7.0f, 9.0f}));
  EXPECT_FLOAT_EQ(gx[1], 7.0f);
  EXPECT_FLOAT_EQ(gx[2], 9.0f);
}

TEST(AvgPool2d, Averages) {
  AvgPool2d pool(2);
  const Tensor x({1, 1, 2, 2}, {1, 2, 3, 4});
  const Tensor y = pool.forward(x);
  EXPECT_FLOAT_EQ(y[0], 2.5f);
  const Tensor gx = pool.backward(Tensor({1, 1, 1, 1}, {4.0f}));
  EXPECT_TRUE(gx.allclose(Tensor({1, 1, 2, 2}, {1, 1, 1, 1})));
}

TEST(PReLU, PositivePassThroughNegativeScaled) {
  PReLU act(2, 0.5f);
  const Tensor x({1, 2}, {3.0f, -4.0f});
  const Tensor y = act.forward(x);
  EXPECT_FLOAT_EQ(y[0], 3.0f);
  EXPECT_FLOAT_EQ(y[1], -2.0f);
}

TEST(PReLU, PerChannelSlopes) {
  PReLU act(2, 0.0f);
  act.params()[0]->value = Tensor({2}, {0.1f, 0.9f});
  const Tensor x({1, 2, 1, 1}, {-10.0f, -10.0f});
  const Tensor y = act.forward(x);
  EXPECT_FLOAT_EQ(y[0], -1.0f);
  EXPECT_FLOAT_EQ(y[1], -9.0f);
}

TEST(ReLU, ClampsNegatives) {
  ReLU act;
  const Tensor y = act.forward(Tensor({1, 3}, {-1, 0, 2}));
  EXPECT_TRUE(y.allclose(Tensor({1, 3}, {0, 0, 2})));
}

TEST(Sigmoid, KnownValues) {
  Sigmoid act;
  const Tensor y = act.forward(Tensor({1, 2}, {0.0f, 100.0f}));
  EXPECT_FLOAT_EQ(y[0], 0.5f);
  EXPECT_NEAR(y[1], 1.0f, 1e-6f);
}

TEST(Tanh, OddFunction) {
  Tanh act;
  const Tensor y = act.forward(Tensor({1, 2}, {1.5f, -1.5f}));
  EXPECT_FLOAT_EQ(y[0], -y[1]);
  EXPECT_NEAR(y[0], std::tanh(1.5f), 1e-6f);
}

TEST(Flatten, CollapsesTrailingAxes) {
  Flatten flat;
  Rng rng(10);
  const Tensor y = flat.forward(Tensor::randn({2, 3, 4, 5}, rng));
  EXPECT_EQ(y.shape(), (Shape{2, 60}));
  const Tensor gx = flat.backward(y);
  EXPECT_EQ(gx.shape(), (Shape{2, 3, 4, 5}));
}

TEST(BatchNorm2d, NormalizesTrainingBatch) {
  BatchNorm2d bn(1);
  Rng rng(11);
  const Tensor x = Tensor::randn({8, 1, 4, 4}, rng, 5.0f, 3.0f);
  const Tensor y = bn.forward(x);
  EXPECT_NEAR(y.mean(), 0.0f, 1e-4f);
  double var = 0.0;
  for (std::int64_t i = 0; i < y.size(); ++i) {
    var += static_cast<double>(y[i]) * y[i];
  }
  EXPECT_NEAR(var / y.size(), 1.0, 1e-2);
}

TEST(BatchNorm2d, RunningStatsConvergeAndDriveEval) {
  BatchNorm2d bn(1, 0.5f);
  Rng rng(12);
  for (int i = 0; i < 30; ++i) {
    bn.forward(Tensor::randn({16, 1, 3, 3}, rng, 2.0f, 1.0f));
  }
  EXPECT_NEAR(bn.buffers()[0]->value[0], 2.0f, 0.2f);  // running mean
  EXPECT_NEAR(bn.buffers()[1]->value[0], 1.0f, 0.3f);  // running var

  bn.set_training(false);
  const Tensor x({1, 1, 1, 1}, {2.0f});
  const Tensor y = bn.forward(x);
  EXPECT_NEAR(y[0], 0.0f, 0.25f);  // ≈ (2 − running_mean)/√running_var
}

TEST(BatchNorm1d, GammaBetaApply) {
  BatchNorm1d bn(2);
  bn.params()[0]->value = Tensor({2}, {2.0f, 1.0f});  // gamma
  bn.params()[1]->value = Tensor({2}, {0.0f, 7.0f});  // beta
  Rng rng(13);
  const Tensor y = bn.forward(Tensor::randn({64, 2}, rng));
  // Column 1 is normalized to ~N(0,1) then shifted by beta=7.
  double col1 = 0.0;
  for (std::int64_t i = 0; i < 64; ++i) col1 += y.at(i, 1);
  EXPECT_NEAR(col1 / 64.0, 7.0, 1e-3);
}

TEST(Highway, GateClosedPassesInput) {
  Rng rng(14);
  Highway hw(4, rng, -100.0f);  // transform gate ≈ 0 everywhere
  const Tensor x = Tensor::randn({3, 4}, rng);
  const Tensor y = hw.forward(x);
  EXPECT_TRUE(y.allclose(x, 1e-4f));
}

TEST(Highway, DefaultBiasNearIdentity) {
  Rng rng(15);
  Highway hw(8, rng);  // bias −1: mostly carry
  const Tensor x = Tensor::randn({4, 8}, rng);
  const Tensor y = hw.forward(x);
  // Should be closer to x than to zero.
  EXPECT_LT((y - x).l2_norm(), x.l2_norm());
}

TEST(Sequential, ComposesAndCollectsParams) {
  Rng rng(16);
  Sequential net;
  net.emplace<Linear>(4, 8, rng);
  net.emplace<ReLU>();
  net.emplace<Linear>(8, 2, rng);
  EXPECT_EQ(net.params().size(), 4u);
  const Tensor y = net.forward(Tensor::randn({5, 4}, rng));
  EXPECT_EQ(y.shape(), (Shape{5, 2}));
  const Tensor gx = net.backward(Tensor::randn({5, 2}, rng));
  EXPECT_EQ(gx.shape(), (Shape{5, 4}));
}

TEST(Sequential, TrainingModePropagates) {
  Rng rng(17);
  Sequential net;
  auto& bn = net.emplace<BatchNorm1d>(3);
  net.set_training(false);
  EXPECT_FALSE(bn.is_training());
  net.set_training(true);
  EXPECT_TRUE(bn.is_training());
}

TEST(Gru, OutputShapeAndDeterminism) {
  Rng rng(18);
  Gru gru(4, 6, rng);
  const Tensor x = Tensor::randn({3, 5, 4}, rng);
  const Tensor h1 = gru.forward(x);
  const Tensor h2 = gru.forward(x);
  EXPECT_EQ(h1.shape(), (Shape{3, 6}));
  EXPECT_TRUE(h1.equals(h2));
}

TEST(Gru, LongerSequenceChangesState) {
  Rng rng(19);
  Gru gru(2, 4, rng);
  Tensor x1 = Tensor::randn({1, 1, 2}, rng);
  Tensor x2({1, 2, 2});
  std::copy(x1.data(), x1.data() + 2, x2.data());
  x2[2] = 1.0f;
  x2[3] = -1.0f;
  const Tensor h1 = gru.forward(x1);
  const Tensor h2 = gru.forward(x2);
  EXPECT_FALSE(h1.allclose(h2, 1e-6f));
}

TEST(Dropout, IdentityInEvalMode) {
  Dropout drop(0.5f);
  drop.set_training(false);
  Rng rng(20);
  const Tensor x = Tensor::randn({4, 8}, rng);
  EXPECT_TRUE(drop.forward(x).equals(x));
  EXPECT_TRUE(drop.backward(x).equals(x));
}

TEST(Dropout, DropsApproximatelyPFraction) {
  Dropout drop(0.3f);
  drop.set_training(true);
  const Tensor x({1, 10000}, 1.0f);
  const Tensor y = drop.forward(x);
  std::int64_t zeros = 0;
  for (std::int64_t i = 0; i < y.size(); ++i) {
    if (y[i] == 0.0f) {
      ++zeros;
    } else {
      EXPECT_NEAR(y[i], 1.0f / 0.7f, 1e-5f);  // inverted scaling
    }
  }
  EXPECT_NEAR(static_cast<double>(zeros) / y.size(), 0.3, 0.02);
}

TEST(Dropout, ExpectedValuePreserved) {
  Dropout drop(0.5f);
  drop.set_training(true);
  const Tensor x({1, 20000}, 2.0f);
  const Tensor y = drop.forward(x);
  EXPECT_NEAR(y.mean(), 2.0f, 0.1f);
}

TEST(Dropout, BackwardUsesSameMask) {
  Dropout drop(0.5f);
  drop.set_training(true);
  const Tensor x({1, 64}, 1.0f);
  const Tensor y = drop.forward(x);
  const Tensor gy({1, 64}, 1.0f);
  const Tensor gx = drop.backward(gy);
  for (std::int64_t i = 0; i < 64; ++i) {
    EXPECT_EQ(gx[i] == 0.0f, y[i] == 0.0f);
  }
}

TEST(Dropout, RejectsBadProbability) {
  EXPECT_THROW(Dropout(-0.1f), std::invalid_argument);
  EXPECT_THROW(Dropout(1.0f), std::invalid_argument);
}

TEST(Lstm, OutputShapeAndDeterminism) {
  Rng rng(21);
  Lstm lstm(4, 6, rng);
  const Tensor x = Tensor::randn({3, 5, 4}, rng);
  const Tensor h1 = lstm.forward(x);
  const Tensor h2 = lstm.forward(x);
  EXPECT_EQ(h1.shape(), (Shape{3, 6}));
  EXPECT_TRUE(h1.equals(h2));
}

TEST(Lstm, ForgetBiasStartsOpen) {
  // With the +1 forget bias the cell should retain state: a long sequence
  // of zero inputs keeps h near zero but bounded, no NaNs.
  Rng rng(22);
  Lstm lstm(2, 4, rng);
  const Tensor x({1, 30, 2});
  const Tensor h = lstm.forward(x);
  for (std::int64_t i = 0; i < h.size(); ++i) {
    EXPECT_TRUE(std::isfinite(h[i]));
    EXPECT_LT(std::abs(h[i]), 1.0f);
  }
}

TEST(Lstm, TwelveParameterTensors) {
  Rng rng(23);
  Lstm lstm(3, 5, rng);
  EXPECT_EQ(lstm.params().size(), 12u);
  EXPECT_EQ(lstm.num_params(), 4 * (5 * 3 + 5 * 5 + 5));
}

// ---- losses ----

TEST(Loss, MseValueAndGrad) {
  const Tensor pred({2, 1}, {3.0f, 5.0f});
  const Tensor target({2, 1}, {1.0f, 5.0f});
  const LossResult r = mse_loss(pred, target);
  EXPECT_FLOAT_EQ(r.value, (4.0f + 0.0f) / 2.0f);
  EXPECT_FLOAT_EQ(r.grad[0], 2.0f * 2.0f / 2.0f);
  EXPECT_FLOAT_EQ(r.grad[1], 0.0f);
}

TEST(Loss, BceMatchesClosedForm) {
  const Tensor logits({1, 1}, {0.0f});
  const Tensor target({1, 1}, {1.0f});
  const LossResult r = bce_with_logits_loss(logits, target);
  EXPECT_NEAR(r.value, std::log(2.0f), 1e-6f);
  EXPECT_NEAR(r.grad[0], -0.5f, 1e-6f);
}

TEST(Loss, BceStableAtExtremeLogits) {
  const Tensor logits({2, 1}, {80.0f, -80.0f});
  const Tensor target({2, 1}, {1.0f, 0.0f});
  const LossResult r = bce_with_logits_loss(logits, target);
  EXPECT_GE(r.value, 0.0f);
  EXPECT_LT(r.value, 1e-6f);
  EXPECT_FALSE(std::isnan(r.grad[0]));
}

TEST(Loss, BinaryAccuracy) {
  const Tensor logits({4, 1}, {2.0f, -1.0f, 0.5f, -0.5f});
  const Tensor target({4, 1}, {1.0f, 0.0f, 0.0f, 1.0f});
  EXPECT_FLOAT_EQ(binary_accuracy(logits, target), 0.5f);
}

}  // namespace
}  // namespace sne::nn
