// nn_training_test.cpp — optimizers, the Trainer loop, datasets/batching,
// and model serialization: does the library actually learn?
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>

#include "nn/nn.h"

namespace sne::nn {
namespace {

// y = 2x₀ − 3x₁ + 1 regression data.
VectorDataset make_linear_data(std::int64_t n, Rng& rng) {
  std::vector<Sample> samples;
  samples.reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const auto x0 = static_cast<float>(rng.uniform(-1.0, 1.0));
    const auto x1 = static_cast<float>(rng.uniform(-1.0, 1.0));
    samples.push_back(
        {Tensor({2}, {x0, x1}), Tensor({1}, 2.0f * x0 - 3.0f * x1 + 1.0f)});
  }
  return VectorDataset(std::move(samples));
}

// XOR-ish two-moon data (linearly inseparable).
VectorDataset make_xor_data(std::int64_t n, Rng& rng) {
  std::vector<Sample> samples;
  for (std::int64_t i = 0; i < n; ++i) {
    const bool a = rng.bernoulli(0.5);
    const bool b = rng.bernoulli(0.5);
    const auto x0 = static_cast<float>(a ? 1 : -1) +
                    static_cast<float>(rng.normal(0.0, 0.1));
    const auto x1 = static_cast<float>(b ? 1 : -1) +
                    static_cast<float>(rng.normal(0.0, 0.1));
    samples.push_back(
        {Tensor({2}, {x0, x1}), Tensor({1}, (a != b) ? 1.0f : 0.0f)});
  }
  return VectorDataset(std::move(samples));
}

TEST(Optimizer, SgdConvergesOnLinearRegression) {
  Rng rng(1);
  Linear model(2, 1, rng);
  Sgd opt(model.params(), 0.1f);
  Trainer trainer(model, opt, mse_loss);
  const VectorDataset data = make_linear_data(256, rng);

  TrainConfig cfg;
  cfg.epochs = 60;
  cfg.batch_size = 32;
  const auto history = trainer.fit(data, nullptr, cfg);
  EXPECT_LT(history.back().train_loss, 1e-3f);
  // The true coefficients should be recovered.
  EXPECT_NEAR(model.weight().value[0], 2.0f, 0.05f);
  EXPECT_NEAR(model.weight().value[1], -3.0f, 0.05f);
  EXPECT_NEAR(model.bias().value[0], 1.0f, 0.05f);
}

TEST(Optimizer, AdamConvergesFasterThanSgdHere) {
  Rng rng(2);
  const VectorDataset data = make_linear_data(256, rng);
  TrainConfig cfg;
  cfg.epochs = 10;
  cfg.batch_size = 32;

  Rng init_a(3);
  Linear model_adam(2, 1, init_a);
  Adam adam(model_adam.params(), 0.05f);
  Trainer trainer_adam(model_adam, adam, mse_loss);
  const float adam_loss = trainer_adam.fit(data, nullptr, cfg).back().train_loss;

  Rng init_b(3);
  Linear model_sgd(2, 1, init_b);
  Sgd sgd(model_sgd.params(), 0.005f, 0.0f);
  Trainer trainer_sgd(model_sgd, sgd, mse_loss);
  const float sgd_loss = trainer_sgd.fit(data, nullptr, cfg).back().train_loss;

  EXPECT_LT(adam_loss, sgd_loss);
}

TEST(Optimizer, WeightDecayShrinksWeights) {
  Rng rng(4);
  Linear model(4, 1, rng);
  Adam opt(model.params(), 0.05f, 0.9f, 0.999f, 1e-8f, /*weight_decay=*/0.5f);
  // No data signal: gradients zero, only decay acts.
  const float before = model.weight().value.l2_norm();
  for (int i = 0; i < 20; ++i) {
    opt.zero_grad();
    opt.step();
  }
  EXPECT_LT(model.weight().value.l2_norm(), before);
}

TEST(Optimizer, GradClipBoundsNorm) {
  Rng rng(5);
  Linear model(8, 8, rng);
  Adam opt(model.params(), 0.01f);
  model.forward(Tensor::randn({4, 8}, rng) * 100.0f);
  model.backward(Tensor::randn({4, 8}, rng) * 100.0f);
  const float pre = opt.clip_grad_norm(1.0f);
  EXPECT_GT(pre, 1.0f);
  double norm2 = 0.0;
  for (Param* p : model.params()) {
    const float n = p->grad.l2_norm();
    norm2 += static_cast<double>(n) * n;
  }
  EXPECT_NEAR(std::sqrt(norm2), 1.0, 1e-3);
}

TEST(Trainer, MlpSolvesXor) {
  Rng rng(6);
  Sequential model;
  model.emplace<Linear>(2, 16, rng);
  model.emplace<Tanh>();
  model.emplace<Linear>(16, 1, rng);
  Adam opt(model.params(), 0.02f);
  Trainer trainer(model, opt, bce_with_logits_loss, binary_accuracy);

  const VectorDataset train = make_xor_data(400, rng);
  const VectorDataset test = make_xor_data(200, rng);

  TrainConfig cfg;
  cfg.epochs = 40;
  cfg.batch_size = 32;
  trainer.fit(train, nullptr, cfg);
  const EvalStats stats = trainer.evaluate(test);
  EXPECT_GT(stats.metric, 0.95f);
}

TEST(Trainer, ValidationStatsPopulated) {
  Rng rng(7);
  Linear model(2, 1, rng);
  Adam opt(model.params(), 0.05f);
  Trainer trainer(model, opt, mse_loss);
  const VectorDataset train = make_linear_data(64, rng);
  const VectorDataset val = make_linear_data(32, rng);
  TrainConfig cfg;
  cfg.epochs = 3;
  const auto history = trainer.fit(train, &val, cfg);
  ASSERT_EQ(history.size(), 3u);
  for (const EpochStats& e : history) {
    EXPECT_FALSE(std::isnan(e.val_loss));
  }
  // Without a metric function, metric is NaN by contract.
  EXPECT_TRUE(std::isnan(history.back().train_metric));
}

TEST(Trainer, PredictMatchesManualForward) {
  Rng rng(8);
  Linear model(3, 2, rng);
  Adam opt(model.params(), 0.01f);
  Trainer trainer(model, opt, mse_loss);

  std::vector<Sample> samples;
  for (int i = 0; i < 5; ++i) {
    samples.push_back({Tensor::randn({3}, rng), Tensor({2})});
  }
  VectorDataset data(samples);
  const Tensor pred = trainer.predict(data, 2);  // exercises partial batches
  ASSERT_EQ(pred.shape(), (Shape{5, 2}));

  model.set_training(false);
  for (int i = 0; i < 5; ++i) {
    const Tensor y = model.forward(samples[static_cast<std::size_t>(i)]
                                       .x.reshaped({1, 3}));
    EXPECT_NEAR(pred.at(i, 0), y.at(0, 0), 1e-5f);
    EXPECT_NEAR(pred.at(i, 1), y.at(0, 1), 1e-5f);
  }
}

TEST(Trainer, DeterministicGivenSeeds) {
  auto run = []() {
    Rng rng(9);
    Sequential model;
    model.emplace<Linear>(2, 8, rng);
    model.emplace<Tanh>();
    model.emplace<Linear>(8, 1, rng);
    Adam opt(model.params(), 0.01f);
    Trainer trainer(model, opt, mse_loss);
    Rng data_rng(10);
    const VectorDataset data = make_linear_data(64, data_rng);
    TrainConfig cfg;
    cfg.epochs = 5;
    cfg.shuffle_seed = 11;
    return trainer.fit(data, nullptr, cfg).back().train_loss;
  };
  EXPECT_EQ(run(), run());
}

TEST(Dataset, MakeBatchStacksSamples) {
  std::vector<Sample> samples;
  samples.push_back({Tensor({2}, {1, 2}), Tensor({1}, {0.0f})});
  samples.push_back({Tensor({2}, {3, 4}), Tensor({1}, {1.0f})});
  VectorDataset data(samples);
  const Sample batch = make_batch(data, {0, 1}, 0, 2);
  EXPECT_EQ(batch.x.shape(), (Shape{2, 2}));
  EXPECT_FLOAT_EQ(batch.x.at(1, 0), 3.0f);
  EXPECT_FLOAT_EQ(batch.y.at(1, 0), 1.0f);
}

TEST(Dataset, SplitFractionsAndDisjointness) {
  Rng rng(12);
  const SplitIndices split = split_indices(1000, 0.8, 0.1, rng);
  EXPECT_EQ(split.train.size(), 800u);
  EXPECT_EQ(split.val.size(), 100u);
  EXPECT_EQ(split.test.size(), 100u);
  std::vector<bool> seen(1000, false);
  for (const auto& group : {split.train, split.val, split.test}) {
    for (const std::int64_t i : group) {
      EXPECT_FALSE(seen[static_cast<std::size_t>(i)]);
      seen[static_cast<std::size_t>(i)] = true;
    }
  }
}

TEST(Dataset, LazyDatasetCallsGenerator) {
  LazyDataset data(3, [](std::int64_t i) {
    return Sample{Tensor({1}, static_cast<float>(i)), Tensor({1})};
  });
  EXPECT_EQ(data.size(), 3);
  EXPECT_FLOAT_EQ(data.get(2).x[0], 2.0f);
}

TEST(Dataset, SubsetRemaps) {
  std::vector<Sample> samples;
  for (int i = 0; i < 5; ++i) {
    samples.push_back({Tensor({1}, static_cast<float>(i)), Tensor({1})});
  }
  VectorDataset base(samples);
  SubsetDataset subset(base, {4, 0});
  EXPECT_EQ(subset.size(), 2);
  EXPECT_FLOAT_EQ(subset.get(0).x[0], 4.0f);
  EXPECT_FLOAT_EQ(subset.get(1).x[0], 0.0f);
}

TEST(ModelIo, SaveLoadRoundTrip) {
  Rng rng(13);
  Sequential a;
  a.emplace<Linear>(3, 4, rng, "l1");
  a.emplace<BatchNorm1d>(4, 0.1f, 1e-5f, "bn");
  a.emplace<Linear>(4, 1, rng, "l2");
  // Push the batch-norm buffers away from defaults.
  a.forward(Tensor::randn({16, 3}, rng, 5.0f, 2.0f));

  const std::string path =
      (std::filesystem::temp_directory_path() / "sne_model_io_test.bin")
          .string();
  save_model(path, a);

  Rng rng2(99);
  Sequential b;
  b.emplace<Linear>(3, 4, rng2, "l1");
  b.emplace<BatchNorm1d>(4, 0.1f, 1e-5f, "bn");
  b.emplace<Linear>(4, 1, rng2, "l2");
  load_model(path, b);
  std::remove(path.c_str());

  b.set_training(false);
  a.set_training(false);
  Rng rng3(14);
  const Tensor x = Tensor::randn({2, 3}, rng3);
  EXPECT_TRUE(a.forward(x).allclose(b.forward(x), 1e-6f));
}

TEST(ModelIo, StrictLoadRejectsArchMismatch) {
  Rng rng(15);
  Linear a(3, 4, rng, "layer");
  Linear b(3, 5, rng, "layer");  // different width
  const TensorMap snapshot = state_dict(a);
  EXPECT_THROW(load_state_dict(b, snapshot), std::runtime_error);
}

TEST(ModelIo, CopyParamsTransplants) {
  Rng rng(16);
  Linear a(3, 2, rng, "src");
  Linear b(3, 2, rng, "dst");
  copy_params(a, b);
  EXPECT_TRUE(a.weight().value.equals(b.weight().value));
  EXPECT_TRUE(a.bias().value.equals(b.bias().value));
}

}  // namespace
}  // namespace sne::nn
