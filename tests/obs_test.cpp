// obs_test.cpp — the telemetry subsystem: span nesting and cross-thread
// recording, exact counters under concurrency, gauge high-water marks,
// chrome-trace JSON well-formedness, reset semantics, the zero-allocation
// disabled path, and the RuntimeConfig/env surface built on top of it.
// Carries the `threaded` ctest label: spans and counters are recorded
// from pool workers, so the tsan preset exercises the per-thread logs.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include "obs/obs.h"
#include "tensor/env.h"
#include "tensor/runtime.h"
#include "tensor/thread_pool.h"

// ---- allocation counter (same trick as infer_parity_test) ----
// Counts heap allocations while armed. Global operator new/delete are
// replaced for the whole binary; the counter only moves when armed, so
// the other tests are unaffected.
namespace {
std::atomic<bool> g_alloc_armed{false};
std::atomic<std::int64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  if (g_alloc_armed.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(size);
  if (!p) throw std::bad_alloc();
  return p;
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace sne {
namespace {

// Every test leaves capture off and the registry empty, however it exits.
struct ObsGuard {
  ~ObsGuard() {
    obs::disable();
    obs::reset();
    set_num_threads(1);
  }
};

std::vector<obs::SpanRecord> spans_named(const char* name) {
  std::vector<obs::SpanRecord> out;
  for (const obs::SpanRecord& s : obs::snapshot_spans()) {
    if (std::strcmp(s.name, name) == 0) out.push_back(s);
  }
  return out;
}

TEST(Obs, SpanNestingDepthsAndContainment) {
  ObsGuard guard;
  obs::reset();
  obs::enable();
  {
    obs::Span outer("test.outer");
    {
      obs::Span inner("test.inner", 42);
    }
  }
  const auto outer = spans_named("test.outer");
  const auto inner = spans_named("test.inner");
  ASSERT_EQ(outer.size(), 1u);
  ASSERT_EQ(inner.size(), 1u);
  EXPECT_EQ(outer[0].depth, 0);
  EXPECT_EQ(inner[0].depth, 1);
  EXPECT_EQ(outer[0].arg, obs::kNoArg);
  EXPECT_EQ(inner[0].arg, 42);
  EXPECT_EQ(outer[0].tid, inner[0].tid);
  // The inner interval lies within the outer one.
  EXPECT_GE(inner[0].start_ns, outer[0].start_ns);
  EXPECT_LE(inner[0].start_ns + inner[0].dur_ns,
            outer[0].start_ns + outer[0].dur_ns);
}

TEST(Obs, SpansRecordedAcrossThreads) {
  ObsGuard guard;
  obs::reset();
  set_num_threads(4);
  obs::enable();
  parallel_for(0, 64, [](std::int64_t i) {
    obs::Span span("test.worker", i);
    volatile double x = 0.0;
    for (int k = 0; k < 100; ++k) x = x + static_cast<double>(k);
  });
  obs::disable();
  const auto spans = spans_named("test.worker");
  ASSERT_EQ(spans.size(), 64u);
  for (const obs::SpanRecord& s : spans) {
    EXPECT_EQ(s.depth, 0);
    EXPECT_GE(s.dur_ns, 0);
  }
}

TEST(Obs, CountersExactUnderConcurrency) {
  ObsGuard guard;
  obs::reset();
  set_num_threads(4);
  obs::enable();
  obs::Counter& c = obs::counter("test.concurrent");
  parallel_for(0, 1000, [&c](std::int64_t) { c.add(3); });
  obs::disable();
  EXPECT_EQ(c.value(), 3000);
  bool found = false;
  for (const obs::CounterRecord& rec : obs::snapshot_counters()) {
    if (rec.name == "test.concurrent") {
      found = true;
      EXPECT_EQ(rec.value, 3000);
      EXPECT_FALSE(rec.is_gauge);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Obs, CounterRegistryReturnsStableReferences) {
  ObsGuard guard;
  obs::Counter& a = obs::counter("test.stable");
  obs::Counter& b = obs::counter("test.stable");
  EXPECT_EQ(&a, &b);
  const char* p1 = obs::intern("test.dynamic.name");
  const char* p2 = obs::intern(std::string("test.dynamic.") + "name");
  EXPECT_EQ(p1, p2);
  EXPECT_STREQ(p1, "test.dynamic.name");
}

TEST(Obs, GaugeTracksValueAndHighWaterMark) {
  ObsGuard guard;
  obs::reset();
  obs::enable();
  obs::Gauge& g = obs::gauge("test.gauge");
  g.set(5);
  g.set(9);
  g.set(2);
  obs::disable();
  EXPECT_EQ(g.value(), 2);
  EXPECT_EQ(g.max(), 9);
  bool found = false;
  for (const obs::CounterRecord& rec : obs::snapshot_counters()) {
    if (rec.name == "test.gauge") {
      found = true;
      EXPECT_TRUE(rec.is_gauge);
      EXPECT_EQ(rec.value, 2);
      EXPECT_EQ(rec.max, 9);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Obs, ResetClearsDataButKeepsCaptureState) {
  ObsGuard guard;
  obs::reset();
  obs::enable();
  obs::counter("test.reset").add(7);
  { obs::Span span("test.reset_span"); }
  obs::reset();
  EXPECT_TRUE(obs::enabled());  // capture state survives reset
  EXPECT_EQ(obs::counter("test.reset").value(), 0);
  EXPECT_TRUE(spans_named("test.reset_span").empty());
  // Recording still works after the reset.
  { obs::Span span("test.reset_span"); }
  EXPECT_EQ(spans_named("test.reset_span").size(), 1u);
}

TEST(Obs, ChromeTraceIsWellFormedJson) {
  ObsGuard guard;
  obs::reset();
  set_num_threads(2);
  obs::enable();
  obs::counter("test.trace_counter").add(11);
  {
    obs::Span outer("test.trace_outer", 5);
    parallel_for(0, 8, [](std::int64_t i) {
      obs::Span span("test.trace_worker", i);
    });
  }
  obs::disable();

  std::ostringstream os;
  obs::write_chrome_trace(os);
  const std::string json = os.str();

  // Structure: one object, one traceEvents array, balanced delimiters.
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  std::int64_t braces = 0, brackets = 0;
  for (const char ch : json) {
    if (ch == '{') ++braces;
    if (ch == '}') --braces;
    if (ch == '[') ++brackets;
    if (ch == ']') --brackets;
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  // Content: the spans, the counter, the per-thread metadata rows.
  EXPECT_NE(json.find("\"name\":\"test.trace_outer\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"test.trace_worker\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"test.trace_counter\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"arg\":5}"), std::string::npos);
}

TEST(Obs, SummaryTableListsSpansAndCounters) {
  ObsGuard guard;
  obs::reset();
  obs::enable();
  { obs::Span span("test.summary_span"); }
  obs::counter("test.summary_counter").add(4);
  obs::disable();
  const std::string table = obs::summary_table();
  EXPECT_NE(table.find("test.summary_span"), std::string::npos);
  EXPECT_NE(table.find("test.summary_counter"), std::string::npos);
}

TEST(Obs, DisabledPathDoesNotAllocate) {
  ObsGuard guard;
  obs::disable();
  obs::reset();
  obs::Counter& c = obs::counter("test.noalloc");  // lookup before arming
  obs::Gauge& g = obs::gauge("test.noalloc_gauge");

  g_alloc_count.store(0);
  g_alloc_armed.store(true);
  for (int i = 0; i < 1000; ++i) {
    obs::Span span("test.noalloc_span", i);
    c.add();
    g.set(i);
  }
  g_alloc_armed.store(false);
  EXPECT_EQ(g_alloc_count.load(), 0);
  EXPECT_EQ(c.value(), 0);
  EXPECT_TRUE(obs::snapshot_spans().empty());
}

// ---- the env/runtime surface the telemetry and pool knobs hang off ----

TEST(Env, ParsesAndFallsBack) {
  ::setenv("SNE_OBSTEST_GOOD", "42", 1);
  ::setenv("SNE_OBSTEST_JUNK", "42abc", 1);
  // Would clamp to LLONG_MAX under plain strtoll (the ERANGE bug the
  // shared helper fixes): must fall back instead.
  ::setenv("SNE_OBSTEST_HUGE", "99999999999999999999999", 1);
  ::setenv("SNE_OBSTEST_FLOAT", "2.5", 1);
  EXPECT_EQ(env::int64("OBSTEST_GOOD", 7), 42);
  EXPECT_EQ(env::int64("OBSTEST_JUNK", 7), 7);
  EXPECT_EQ(env::int64("OBSTEST_HUGE", 7), 7);
  EXPECT_EQ(env::int64("OBSTEST_UNSET_NAME", 7), 7);
  EXPECT_DOUBLE_EQ(env::float64("OBSTEST_FLOAT", 1.0), 2.5);
  EXPECT_DOUBLE_EQ(env::float64("OBSTEST_JUNK", 1.0), 1.0);
  EXPECT_EQ(env::string("OBSTEST_GOOD", "x"), "42");
  EXPECT_EQ(env::string("OBSTEST_UNSET_NAME", "x"), "x");
  ::unsetenv("SNE_OBSTEST_GOOD");
  ::unsetenv("SNE_OBSTEST_JUNK");
  ::unsetenv("SNE_OBSTEST_HUGE");
  ::unsetenv("SNE_OBSTEST_FLOAT");
}

// The strict whole-string parser behind both env overrides and the CLI's
// flag values (tools/sne_cli.cpp routes --foo N through these so that
// "--top 20x" is an error naming the flag, not a silent parse of 20).
TEST(Env, StrictParsersRejectJunkTailsAndOverflow) {
  EXPECT_EQ(env::parse_int64("42").value_or(-1), 42);
  EXPECT_EQ(env::parse_int64("-7").value_or(-1), -7);
  EXPECT_EQ(env::parse_int64("  11").value_or(-1), 11);  // strtoll skip-ws
  EXPECT_FALSE(env::parse_int64(""));
  EXPECT_FALSE(env::parse_int64("12junk"));
  EXPECT_FALSE(env::parse_int64("12 "));
  EXPECT_FALSE(env::parse_int64("1e3"));  // not an integer literal
  EXPECT_FALSE(env::parse_int64("99999999999999999999999"));  // ERANGE
  EXPECT_FALSE(env::parse_int64("abc"));

  EXPECT_DOUBLE_EQ(env::parse_float64("2.5").value_or(-1.0), 2.5);
  EXPECT_DOUBLE_EQ(env::parse_float64("1e3").value_or(-1.0), 1000.0);
  EXPECT_FALSE(env::parse_float64(""));
  EXPECT_FALSE(env::parse_float64("0.5x"));
  EXPECT_FALSE(env::parse_float64("1e99999"));   // overflow: ERANGE
  EXPECT_FALSE(env::parse_float64("-1e99999"));  // negative overflow too
  // Underflow also sets ERANGE, but strtod already returns the nearest
  // representable value — tiny magnitudes are legitimate inputs and
  // must be accepted (subnormal), not rejected as unparsable.
  EXPECT_DOUBLE_EQ(env::parse_float64("1e-310").value_or(-1.0), 1e-310);
  EXPECT_DOUBLE_EQ(env::parse_float64("1e-5000").value_or(-1.0), 0.0);
}

TEST(RuntimeConfigTest, ResolvePrefetchAndTraceToggle) {
  ObsGuard guard;
  const RuntimeConfig saved = RuntimeConfig::current();

  RuntimeConfig rc = saved;
  rc.prefetch = 3;
  rc.trace = true;
  RuntimeConfig::set_current(rc);
  EXPECT_TRUE(obs::enabled());
  EXPECT_EQ(RuntimeConfig::resolve_prefetch(-1), 3);  // sentinel defers
  EXPECT_EQ(RuntimeConfig::resolve_prefetch(0), 0);   // explicit wins
  EXPECT_EQ(RuntimeConfig::resolve_prefetch(5), 5);

  rc.trace = false;
  RuntimeConfig::set_current(rc);
  EXPECT_FALSE(obs::enabled());

  RuntimeConfig::set_current(saved);
}

}  // namespace
}  // namespace sne
