// pipeline_test.cpp — the end-to-end facade (SnePipeline) and dataset
// persistence (dataset_io): train/score/save/load round-trips.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "core/sne_pipeline.h"
#include "eval/roc.h"
#include "sim/dataset_io.h"

namespace sne {
namespace {

sim::SnDataset small_dataset(std::int64_t n = 40, std::uint64_t seed = 9) {
  sim::SnDataset::Config cfg;
  cfg.num_samples = n;
  cfg.seed = seed;
  cfg.catalog.count = 150;
  return sim::SnDataset::build(cfg);
}

std::vector<std::int64_t> range_indices(std::int64_t lo, std::int64_t hi) {
  std::vector<std::int64_t> idx;
  for (std::int64_t i = lo; i < hi; ++i) idx.push_back(i);
  return idx;
}

core::SnePipelineConfig tiny_pipeline_config() {
  core::SnePipelineConfig cfg;
  cfg.stamp_size = 36;
  cfg.hidden_units = 16;
  cfg.flux_epochs = 1;
  cfg.flux_pairs = 60;
  cfg.classifier_epochs = 8;
  cfg.joint_epochs = 1;
  return cfg;
}

TEST(SnePipeline, RejectsScoringBeforeTraining) {
  core::SnePipeline pipeline(tiny_pipeline_config());
  const sim::SnDataset data = small_dataset();
  EXPECT_FALSE(pipeline.is_trained());
  EXPECT_THROW(pipeline.score(data, 0), std::logic_error);
  EXPECT_THROW(pipeline.save("/tmp/never.bin"), std::logic_error);
}

TEST(SnePipeline, TrainScoreRoundTrip) {
  const sim::SnDataset data = small_dataset(40, 31);
  core::SnePipeline pipeline(tiny_pipeline_config());
  const core::SnePipelineReport report =
      pipeline.train(data, range_indices(0, 32), range_indices(32, 40));

  EXPECT_EQ(report.flux_history.size(), 1u);
  EXPECT_EQ(report.classifier_history.size(), 8u);
  EXPECT_EQ(report.joint_history.size(), 1u);
  EXPECT_TRUE(pipeline.is_trained());

  const double p = pipeline.score(data, 0);
  EXPECT_GE(p, 0.0);
  EXPECT_LE(p, 1.0);

  const auto scores = pipeline.score_all(data, range_indices(0, 10));
  ASSERT_EQ(scores.size(), 10u);
  EXPECT_NEAR(scores[0], p, 1e-5);
}

TEST(SnePipeline, SaveLoadPreservesScores) {
  const sim::SnDataset data = small_dataset(30, 77);
  core::SnePipeline pipeline(tiny_pipeline_config());
  pipeline.train(data, range_indices(0, 30));

  const std::string path =
      (std::filesystem::temp_directory_path() / "sne_pipeline_test.bin")
          .string();
  pipeline.save(path);
  core::SnePipeline restored = core::SnePipeline::load(path);
  std::remove(path.c_str());

  EXPECT_TRUE(restored.is_trained());
  EXPECT_EQ(restored.config().stamp_size, 36);
  EXPECT_EQ(restored.config().hidden_units, 16);
  for (std::int64_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(pipeline.score(data, i), restored.score(data, i), 1e-5);
  }
}

TEST(SnePipeline, EstimateMagnitudeCropsOversizedPairs) {
  const sim::SnDataset data = small_dataset(10, 5);
  core::SnePipeline pipeline(tiny_pipeline_config());
  pipeline.train(data, range_indices(0, 10));

  // Full 65×65 pair → internally cropped to 36.
  const Tensor ref = data.matched_reference_image(0, astro::Band::r, 0);
  const Tensor obs = data.observation_image(0, astro::Band::r, 0);
  Tensor pair({2, 65, 65});
  std::copy(ref.data(), ref.data() + ref.size(), pair.data());
  std::copy(obs.data(), obs.data() + obs.size(), pair.data() + ref.size());
  const double mag = pipeline.estimate_magnitude(pair);
  EXPECT_GT(mag, 15.0);
  EXPECT_LT(mag, 40.0);
}

TEST(SnePipeline, LoadRejectsGarbage) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "sne_pipeline_bad.bin")
          .string();
  {
    std::ofstream os(path, std::ios::binary);
    os << "not a pipeline";
  }
  EXPECT_THROW(core::SnePipeline::load(path), std::runtime_error);
  std::remove(path.c_str());
}

// ---- dataset persistence ----

TEST(DatasetIo, RoundTripPreservesSpecs) {
  const sim::SnDataset data = small_dataset(25, 123);
  std::stringstream ss;
  sim::write_dataset(ss, data);
  const sim::SnDataset restored = sim::read_dataset(ss);

  ASSERT_EQ(restored.size(), data.size());
  for (std::int64_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(restored.spec(i).galaxy_index, data.spec(i).galaxy_index);
    EXPECT_EQ(restored.spec(i).sn.type, data.spec(i).sn.type);
    EXPECT_EQ(restored.spec(i).sn.redshift, data.spec(i).sn.redshift);
    EXPECT_EQ(restored.spec(i).sn.peak_mjd, data.spec(i).sn.peak_mjd);
    EXPECT_EQ(restored.spec(i).offset.dx, data.spec(i).offset.dx);
    EXPECT_EQ(restored.spec(i).noise_seed, data.spec(i).noise_seed);
  }
}

TEST(DatasetIo, RoundTripReproducesImagesBitExactly) {
  const sim::SnDataset data = small_dataset(8, 321);
  std::stringstream ss;
  sim::write_dataset(ss, data);
  const sim::SnDataset restored = sim::read_dataset(ss);

  // Images regenerate deterministically from the specs.
  EXPECT_TRUE(data.observation_image(3, astro::Band::z, 2)
                  .equals(restored.observation_image(3, astro::Band::z, 2)));
  EXPECT_TRUE(data.reference_image(5, astro::Band::g)
                  .equals(restored.reference_image(5, astro::Band::g)));
  const auto a = data.measured_light_curve(1);
  const auto b = restored.measured_light_curve(1);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t k = 0; k < a.size(); ++k) {
    EXPECT_EQ(a[k].flux, b[k].flux);
  }
}

TEST(DatasetIo, FileRoundTrip) {
  const sim::SnDataset data = small_dataset(6, 555);
  const std::string path =
      (std::filesystem::temp_directory_path() / "sne_dataset_test.bin")
          .string();
  sim::save_dataset(path, data);
  const sim::SnDataset restored = sim::load_dataset(path);
  std::remove(path.c_str());
  EXPECT_EQ(restored.size(), 6);
  EXPECT_EQ(restored.spec(2).sn.peak_abs_mag, data.spec(2).sn.peak_abs_mag);
}

TEST(DatasetIo, RejectsBadMagic) {
  std::stringstream ss;
  ss << "JUNKJUNKJUNK";
  EXPECT_THROW(sim::read_dataset(ss), std::runtime_error);
}

TEST(DatasetIo, RejectsTruncated) {
  const sim::SnDataset data = small_dataset(5, 999);
  std::stringstream ss;
  sim::write_dataset(ss, data);
  std::string blob = ss.str();
  blob.resize(blob.size() / 3);
  std::stringstream truncated(blob);
  EXPECT_THROW(sim::read_dataset(truncated), std::runtime_error);
}

TEST(DatasetIo, FromPartsValidatesGalaxyIndices) {
  const sim::SnDataset data = small_dataset(5, 1);
  std::vector<sim::SampleSpec> specs;
  for (std::int64_t i = 0; i < data.size(); ++i) {
    specs.push_back(data.spec(i));
  }
  specs[0].galaxy_index = 10'000'000;  // out of catalog range
  EXPECT_THROW(sim::SnDataset::from_parts(data.config(), std::move(specs)),
               std::invalid_argument);
}

}  // namespace
}  // namespace sne
