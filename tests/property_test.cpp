// property_test.cpp — parameterized property sweeps over the invariants
// the rest of the system silently relies on: conservation laws in the
// simulator, equivalences between independent implementations, and
// structural guarantees of the numerical code.
#include <gtest/gtest.h>

#include <cmath>

#include "astro/lightcurve.h"
#include "tensor/gemm.h"
#include "astro/photometry.h"
#include "baselines/template_grid.h"
#include "eval/roc.h"
#include "nn/nn.h"
#include "sim/image_ops.h"
#include "sim/sersic.h"

namespace sne {
namespace {

// ---- conv-as-gemm equals direct convolution ----

struct ConvCase {
  int in_ch, out_ch, kernel, size, pad, stride;
};

class ConvEquivalence : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvEquivalence, MatchesDirectConvolution) {
  const ConvCase c = GetParam();
  Rng rng(c.size * 100 + c.kernel);
  nn::Conv2d conv(c.in_ch, c.out_ch, c.kernel, rng, c.stride, c.pad);
  const Tensor x = Tensor::randn({2, c.in_ch, c.size, c.size}, rng);
  const Tensor y = conv.forward(x);

  // Direct (quadruple-loop) convolution against the same weights.
  const Tensor& w = conv.params()[0]->value;  // [out, in·k·k]
  const Tensor& b = conv.params()[1]->value;
  const std::int64_t out_extent =
      sne::conv_out_extent(c.size, c.kernel, c.pad, c.stride);
  for (std::int64_t n = 0; n < 2; ++n) {
    for (std::int64_t oc = 0; oc < c.out_ch; ++oc) {
      for (std::int64_t oy = 0; oy < out_extent; ++oy) {
        for (std::int64_t ox = 0; ox < out_extent; ++ox) {
          double acc = b[oc];
          for (std::int64_t ic = 0; ic < c.in_ch; ++ic) {
            for (std::int64_t ky = 0; ky < c.kernel; ++ky) {
              for (std::int64_t kx = 0; kx < c.kernel; ++kx) {
                const std::int64_t iy = oy * c.stride + ky - c.pad;
                const std::int64_t ix = ox * c.stride + kx - c.pad;
                if (iy < 0 || iy >= c.size || ix < 0 || ix >= c.size) {
                  continue;
                }
                acc += static_cast<double>(x.at(n, ic, iy, ix)) *
                       w.at(oc, (ic * c.kernel + ky) * c.kernel + kx);
              }
            }
          }
          EXPECT_NEAR(y.at(n, oc, oy, ox), acc, 2e-3)
              << "at n=" << n << " oc=" << oc << " oy=" << oy << " ox=" << ox;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvEquivalence,
    ::testing::Values(ConvCase{1, 1, 3, 6, 0, 1}, ConvCase{2, 3, 3, 7, 1, 1},
                      ConvCase{3, 2, 5, 9, 0, 1},
                      ConvCase{1, 4, 3, 8, 1, 2}));

// ---- AUC equals the Mann–Whitney U statistic ----

class AucEqualsU : public ::testing::TestWithParam<int> {};

TEST_P(AucEqualsU, OnRandomScores) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  std::vector<float> scores, labels;
  for (int i = 0; i < 400; ++i) {
    const bool pos = rng.bernoulli(0.4);
    // Coarse quantization creates plenty of ties — the hard case.
    scores.push_back(
        std::round(static_cast<float>(rng.normal(pos ? 0.6 : 0.0, 1.0)) *
                   4.0f) /
        4.0f);
    labels.push_back(pos ? 1.0f : 0.0f);
  }
  const double roc_auc = eval::auc(scores, labels);

  // U statistic: pairwise wins + half-ties.
  double wins = 0.0;
  double pairs = 0.0;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    if (labels[i] < 0.5f) continue;
    for (std::size_t j = 0; j < scores.size(); ++j) {
      if (labels[j] > 0.5f) continue;
      pairs += 1.0;
      if (scores[i] > scores[j]) {
        wins += 1.0;
      } else if (scores[i] == scores[j]) {
        wins += 0.5;
      }
    }
  }
  EXPECT_NEAR(roc_auc, wins / pairs, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AucEqualsU, ::testing::Range(1, 8));

// ---- Sérsic half-light property ----

class SersicHalfLight : public ::testing::TestWithParam<double> {};

TEST_P(SersicHalfLight, HalfTheFluxInsideRe) {
  sim::SersicProfile p;
  p.sersic_n = GetParam();
  p.half_light_radius = 5.0;
  p.axis_ratio = 1.0;  // circular, so a circular aperture applies
  p.total_flux = 1000.0;
  // Large stamp so truncation doesn't distort the comparison.
  const Tensor img = sim::render_sersic(p, 129, 129, 64.0, 64.0);
  const double inside =
      sim::aperture_sum(img, 64.0, 64.0, p.half_light_radius);
  // The grid truncates the profile, so "half" is approximate — and more
  // approximate for high-n profiles whose wings extend far beyond any
  // finite stamp (the rendered, renormalized profile concentrates more
  // flux in the core than the analytic one).
  EXPECT_GT(inside / img.sum(), 0.40);
  EXPECT_LT(inside / img.sum(), 0.75);
}

INSTANTIATE_TEST_SUITE_P(Indices, SersicHalfLight,
                         ::testing::Values(0.5, 1.0, 2.0, 4.0));

// ---- light-curve continuity ----

class LightCurveContinuity : public ::testing::TestWithParam<astro::SnType> {};

TEST_P(LightCurveContinuity, NoJumpsAfterExplosion) {
  const astro::Cosmology cosmo;
  astro::SnParams p;
  p.type = GetParam();
  p.redshift = 0.6;
  p.peak_mjd = 50.0;
  p.peak_abs_mag = astro::is_type_ia(p.type) ? -19.3 : -17.5;
  const astro::LightCurve lc(p, cosmo);

  for (const astro::Band b : astro::kAllBands) {
    // Continuity only matters on the bright part of the curve: the
    // fireball rise is legitimately steep (in magnitudes) while the flux
    // is still a small fraction of peak.
    const double floor = 0.1 * lc.flux(b, lc.peak_mjd_in_band(b));
    double prev = lc.flux(b, 0.0);
    for (double t = 0.25; t < 250.0; t += 0.25) {
      const double cur = lc.flux(b, t);
      if (prev > floor && cur > floor) {
        // No quarter-day step changes the magnitude by more than 0.2.
        EXPECT_LT(std::abs(-2.5 * std::log10(cur / prev)), 0.2)
            << "band " << astro::band_name(b) << " t=" << t;
      }
      prev = cur;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllTypes, LightCurveContinuity,
                         ::testing::ValuesIn(astro::kAllSnTypes),
                         [](const auto& info) {
                           return std::string(astro::sn_type_name(info.param));
                         });

// ---- template-grid recovery across redshifts ----

class GridRecovery : public ::testing::TestWithParam<double> {};

TEST_P(GridRecovery, FindsTrueRedshiftOnCleanIaData) {
  const double true_z = GetParam();
  baselines::TemplateGridConfig gcfg;
  gcfg.z_step = 0.1;
  gcfg.peak_step = 5.0;
  gcfg.ia_stretches = {1.0};
  const baselines::TemplateGrid grid(gcfg);

  astro::SnParams p;
  p.type = astro::SnType::Ia;
  p.redshift = true_z;
  p.peak_mjd = 30.0;
  p.peak_abs_mag = -19.3;
  const astro::LightCurve lc(p, grid.cosmology());

  std::vector<sim::FluxMeasurement> data;
  for (const astro::Band b : astro::kAllBands) {
    for (double mjd = 5.0; mjd <= 65.0; mjd += 10.0) {
      sim::FluxMeasurement m;
      m.band = b;
      m.mjd = mjd;
      m.flux = lc.flux(b, mjd);
      m.flux_error = std::max(0.5, 0.02 * std::abs(m.flux));
      data.push_back(m);
    }
  }
  baselines::GridEntry best;
  grid.best_fit_of_class(true, data, &best);
  EXPECT_NEAR(best.redshift, true_z, 0.15) << "true z " << true_z;
}

INSTANTIATE_TEST_SUITE_P(Redshifts, GridRecovery,
                         ::testing::Values(0.3, 0.5, 0.8, 1.2));

// ---- blur preserves flux across sigma ----

class BlurFluxConservation : public ::testing::TestWithParam<double> {};

TEST_P(BlurFluxConservation, InteriorSourceFluxConserved) {
  Tensor img({65, 65});
  img.at(32, 32) = 500.0f;
  img.at(30, 35) = 250.0f;
  const Tensor out = sim::gaussian_blur(img, GetParam());
  EXPECT_NEAR(out.sum(), 750.0f, 1.0f);
}

INSTANTIATE_TEST_SUITE_P(Sigmas, BlurFluxConservation,
                         ::testing::Values(0.5, 1.0, 2.0, 3.5));

// ---- trainer lr decay ----

TEST(TrainerLrDecay, HalvesPerEpoch) {
  Rng rng(1);
  nn::Linear model(2, 1, rng);
  nn::Adam opt(model.params(), 0.8f);
  nn::Trainer trainer(model, opt, nn::mse_loss);
  std::vector<nn::Sample> samples;
  for (int i = 0; i < 8; ++i) {
    samples.push_back({Tensor::randn({2}, rng), Tensor({1})});
  }
  nn::VectorDataset data(samples);
  nn::TrainConfig tc;
  tc.epochs = 3;
  tc.lr_decay = 0.5f;
  trainer.fit(data, nullptr, tc);
  EXPECT_FLOAT_EQ(opt.learning_rate(), 0.1f);
}

TEST(Materialize, ReproducesLazySamples) {
  nn::LazyDataset lazy(5, [](std::int64_t i) {
    return nn::Sample{Tensor({2}, static_cast<float>(i)),
                      Tensor({1}, static_cast<float>(i * i))};
  });
  const nn::VectorDataset dense = nn::materialize(lazy);
  ASSERT_EQ(dense.size(), 5);
  for (std::int64_t i = 0; i < 5; ++i) {
    EXPECT_TRUE(dense.get(i).x.equals(lazy.get(i).x));
    EXPECT_TRUE(dense.get(i).y.equals(lazy.get(i).y));
  }
}

// ---- signed-log round trip across magnitudes ----

class SignedLogRoundTrip : public ::testing::TestWithParam<double> {};

TEST_P(SignedLogRoundTrip, Bijective) {
  const double x = GetParam();
  EXPECT_NEAR(astro::signed_log_inverse(astro::signed_log(x)), x,
              1e-9 * std::max(1.0, std::abs(x)));
  EXPECT_NEAR(astro::signed_log_inverse(astro::signed_log(-x)), -x,
              1e-9 * std::max(1.0, std::abs(x)));
}

INSTANTIATE_TEST_SUITE_P(Magnitudes, SignedLogRoundTrip,
                         ::testing::Values(0.0, 1e-6, 0.1, 3.0, 1e3, 1e6));

}  // namespace
}  // namespace sne
