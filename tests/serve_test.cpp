// serve_test.cpp — the scoring daemon stack bottom-up: wire framing
// (header validation, budget cap), MicroBatcher flush semantics
// (size-or-deadline, overload rejection, drain-on-shutdown), and the
// full ScoreServer over real sockets — concurrent clients must get
// scores bitwise identical to a direct InferenceSession regardless of
// how the batcher grouped their requests, overload must surface as a
// typed error, malformed frames must cost one connection (never the
// daemon), and stop() must drain everything already admitted. Carries
// the `threaded` label: the tsan/asan serve presets run exactly this
// binary.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "infer/plan.h"
#include "infer/session.h"
#include "nn/nn.h"
#include "serve/client.h"
#include "serve/micro_batcher.h"
#include "serve/server.h"
#include "serve/wire.h"
#include "tensor/rng.h"
#include "tensor/view.h"

namespace sne {
namespace {

using namespace std::chrono_literals;

// ---- shared fixtures ----

constexpr std::int64_t kIn = 6;
constexpr std::int64_t kOut = 3;

// Tiny two-layer net; the plan borrows the network, so both live
// together for the duration of a test.
struct TestModel {
  Rng rng{907};
  nn::Sequential net;
  std::shared_ptr<const infer::InferencePlan> plan;

  TestModel() {
    net.emplace<nn::Linear>(kIn, 8, rng);
    net.emplace<nn::ReLU>();
    net.emplace<nn::Linear>(8, kOut, rng);
    net.set_training(false);
    plan = std::make_shared<infer::InferencePlan>(net, Shape{kIn});
  }

  serve::ScorerFactory factory() const {
    serve::ScorerSpec spec;
    spec.plan = plan;
    return serve::scorer_factory(std::move(spec));
  }
};

std::string socket_path(const std::string& name) {
  return testing::TempDir() + name;
}

std::vector<float> sample_for(std::uint64_t tag) {
  std::vector<float> x(static_cast<std::size_t>(kIn));
  for (std::size_t k = 0; k < x.size(); ++k) {
    x[k] = 0.25f * static_cast<float>((tag * 31 + k * 7) % 97) - 12.0f;
  }
  return x;
}

// Reference scores straight through an InferenceSession (batch of one).
std::vector<float> direct_scores(const TestModel& model,
                                 const std::vector<float>& x) {
  infer::InferenceSession session(model.plan);
  Tensor out;
  session.run(ConstTensorView(x.data(), Shape{1, kIn}), out);
  return std::vector<float>(out.data(), out.data() + kOut);
}

// A Scorer that parks inside run() until released — the lever for
// filling the queue deterministically (overload, drain tests).
struct Gate {
  std::mutex mutex;
  std::condition_variable cv;
  bool open = false;
  std::atomic<std::int64_t> entered{0};

  void release() {
    {
      std::lock_guard<std::mutex> lock(mutex);
      open = true;
    }
    cv.notify_all();
  }
};

class GatedScorer final : public serve::Scorer {
 public:
  explicit GatedScorer(std::shared_ptr<Gate> gate) : gate_(std::move(gate)) {}
  std::int64_t sample_numel() const override { return kIn; }
  std::int64_t output_numel() const override { return kOut; }
  void run(const Tensor& batch, Tensor& out) override {
    gate_->entered.fetch_add(1);
    std::unique_lock<std::mutex> lock(gate_->mutex);
    gate_->cv.wait(lock, [&] { return gate_->open; });
    const std::int64_t n = batch.extent(0);
    out.resize({n, kOut});
    // Echo-style scores: row i gets [x0, x0, x0] of its own input, so
    // responses are attributable.
    for (std::int64_t i = 0; i < n; ++i) {
      for (std::int64_t j = 0; j < kOut; ++j) {
        out.data()[i * kOut + j] = batch.data()[i * kIn];
      }
    }
  }

 private:
  std::shared_ptr<Gate> gate_;
};

// ---- wire framing ----

TEST(Wire, HeaderRoundTripsAndRejectsCorruption) {
  unsigned char buf[serve::kFrameHeaderBytes];
  serve::encode_frame_header(serve::FrameType::kScoreRequest, 1234, buf);
  const serve::FrameHeader h = serve::decode_frame_header(buf);
  EXPECT_EQ(h.type, serve::FrameType::kScoreRequest);
  EXPECT_EQ(h.payload_len, 1234u);

  unsigned char bad[serve::kFrameHeaderBytes];
  std::memcpy(bad, buf, sizeof(buf));
  bad[0] = 'X';  // magic
  EXPECT_THROW(serve::decode_frame_header(bad), std::runtime_error);

  std::memcpy(bad, buf, sizeof(buf));
  bad[4] = 99;  // version
  EXPECT_THROW(serve::decode_frame_header(bad), std::runtime_error);

  std::memcpy(bad, buf, sizeof(buf));
  bad[5] = 0;  // frame type outside the enum
  EXPECT_THROW(serve::decode_frame_header(bad), std::runtime_error);

  // A lying length beyond the hard cap must throw BEFORE any allocation.
  serve::encode_frame_header(serve::FrameType::kScoreRequest,
                             serve::kMaxFramePayload + 1, bad);
  EXPECT_THROW(serve::decode_frame_header(bad), std::runtime_error);
}

// ---- MicroBatcher ----

TEST(MicroBatcher, FlushesImmediatelyAtFullBatch) {
  serve::MicroBatcherConfig cfg;
  cfg.max_batch = 4;
  cfg.max_delay_us = 60'000'000;  // a full batch must not wait for this
  serve::MicroBatcher batcher(cfg);
  for (std::uint64_t i = 0; i < 4; ++i) {
    serve::ScoreJob job;
    job.id = i;
    EXPECT_EQ(batcher.submit(std::move(job)),
              serve::MicroBatcher::Admit::kOk);
  }
  std::vector<serve::ScoreJob> batch;
  const auto t0 = std::chrono::steady_clock::now();
  ASSERT_TRUE(batcher.next_batch(batch));
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  ASSERT_EQ(batch.size(), 4u);
  EXPECT_LT(elapsed, 10s);  // returned long before the 60 s deadline
  // FIFO into the batch.
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_EQ(batch[i].id, i);
}

TEST(MicroBatcher, FlushesPartialBatchOnDeadline) {
  serve::MicroBatcherConfig cfg;
  cfg.max_batch = 1024;  // never reached
  cfg.max_delay_us = 3000;
  serve::MicroBatcher batcher(cfg);
  serve::ScoreJob a, b;
  a.id = 1;
  b.id = 2;
  ASSERT_EQ(batcher.submit(std::move(a)), serve::MicroBatcher::Admit::kOk);
  ASSERT_EQ(batcher.submit(std::move(b)), serve::MicroBatcher::Admit::kOk);
  std::vector<serve::ScoreJob> batch;
  ASSERT_TRUE(batcher.next_batch(batch));  // deadline, not size, fires
  EXPECT_EQ(batch.size(), 2u);
  EXPECT_EQ(batcher.depth(), 0);
}

TEST(MicroBatcher, RejectsOverloadAndDrainsOnShutdown) {
  serve::MicroBatcherConfig cfg;
  cfg.max_batch = 2;
  cfg.max_queue = 2;
  serve::MicroBatcher batcher(cfg);
  ASSERT_EQ(batcher.submit({}), serve::MicroBatcher::Admit::kOk);
  ASSERT_EQ(batcher.submit({}), serve::MicroBatcher::Admit::kOk);
  // Admission control: full queue rejects fast, it never blocks.
  EXPECT_EQ(batcher.submit({}), serve::MicroBatcher::Admit::kOverloaded);

  batcher.begin_shutdown();
  EXPECT_EQ(batcher.submit({}), serve::MicroBatcher::Admit::kShuttingDown);

  // Drain, don't drop: queued jobs still come out, then workers get the
  // exit signal.
  std::vector<serve::ScoreJob> batch;
  ASSERT_TRUE(batcher.next_batch(batch));
  EXPECT_EQ(batch.size(), 2u);
  EXPECT_FALSE(batcher.next_batch(batch));
}

// ---- ScoreServer integration ----

TEST(Serve, ScoresMatchDirectSessionBitwise) {
  const TestModel model;
  serve::ScoreServerConfig cfg;
  cfg.unix_path = socket_path("parity.sock");
  cfg.workers = 2;
  cfg.batcher.max_batch = 8;
  cfg.batcher.max_delay_us = 2000;
  serve::ScoreServer server(cfg, model.factory());
  server.start();

  constexpr int kClients = 4;
  constexpr int kPerClient = 12;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      serve::ScoreClient client =
          serve::ScoreClient::connect_unix(cfg.unix_path);
      EXPECT_EQ(client.sample_numel(), kIn);
      EXPECT_EQ(client.output_numel(), kOut);
      for (int r = 0; r < kPerClient; ++r) {
        const auto tag = static_cast<std::uint64_t>(c * 1000 + r);
        const std::vector<float> x = sample_for(tag);
        const std::vector<float> got = client.score(x);
        const std::vector<float> want = direct_scores(model, x);
        // Bitwise: the GEMM reduction order per output element does not
        // depend on how many other rows shared the batch.
        if (std::memcmp(got.data(), want.data(),
                        got.size() * sizeof(float)) != 0) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(mismatches.load(), 0);

  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.requests, kClients * kPerClient);
  EXPECT_EQ(stats.scored, kClients * kPerClient);
  EXPECT_EQ(stats.rejected, 0);
  EXPECT_GE(stats.batches, 1);
  std::int64_t hist_total = 0;
  for (const std::int64_t b : stats.batch_fill) hist_total += b;
  EXPECT_EQ(hist_total, stats.batches);
  EXPECT_EQ(stats.latency_samples, kClients * kPerClient);
  EXPECT_GE(stats.p99_ms, stats.p50_ms);
  server.stop();
}

TEST(Serve, DeadlineFlushesASingleWaitingRequest) {
  const TestModel model;
  serve::ScoreServerConfig cfg;
  cfg.unix_path = socket_path("deadline.sock");
  cfg.batcher.max_batch = 64;  // a lone request can never fill this
  cfg.batcher.max_delay_us = 10'000;
  serve::ScoreServer server(cfg, model.factory());
  server.start();

  serve::ScoreClient client = serve::ScoreClient::connect_unix(cfg.unix_path);
  const std::vector<float> x = sample_for(5);
  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<float> got = client.score(x);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_EQ(got, direct_scores(model, x));
  // The response can only have been produced by the deadline flush; it
  // must arrive promptly, not hang for a fuller batch.
  EXPECT_LT(elapsed, 10s);
  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.batches, 1);
  EXPECT_EQ(stats.batch_fill[0], 1);  // fill-1 bucket
  server.stop();
}

TEST(Serve, OverloadIsRejectedWithTypedError) {
  auto gate = std::make_shared<Gate>();
  serve::ScoreServerConfig cfg;
  cfg.unix_path = socket_path("overload.sock");
  cfg.batcher.max_batch = 1;
  cfg.batcher.max_queue = 1;
  cfg.batcher.max_delay_us = 0;
  serve::ScoreServer server(
      cfg, [gate] { return std::make_unique<GatedScorer>(gate); });
  server.start();

  serve::ScoreClient client = serve::ScoreClient::connect_unix(cfg.unix_path);
  const std::vector<float> x = sample_for(1);

  // A: picked up by the worker, which parks inside run().
  client.send_request(1, x);
  while (gate->entered.load() == 0) std::this_thread::yield();
  // B: sits in the queue (capacity 1).
  client.send_request(2, x);
  while (server.queue_depth() < 1) std::this_thread::yield();
  // C: queue full — must bounce immediately with the typed error while
  // A and B are still pending.
  client.send_request(3, x);
  serve::ScoreResponse rejected = client.recv_response();
  EXPECT_EQ(rejected.id, 3u);
  EXPECT_FALSE(rejected.ok);
  EXPECT_EQ(rejected.error, serve::WireError::kOverloaded);

  gate->release();
  const serve::ScoreResponse ra = client.recv_response();
  const serve::ScoreResponse rb = client.recv_response();
  EXPECT_TRUE(ra.ok);
  EXPECT_TRUE(rb.ok);
  EXPECT_EQ(ra.id, 1u);
  EXPECT_EQ(rb.id, 2u);
  EXPECT_EQ(server.stats().rejected, 1);
  server.stop();
}

TEST(Serve, MalformedFrameCostsOneConnectionNotTheDaemon) {
  const TestModel model;
  serve::ScoreServerConfig cfg;
  cfg.unix_path = socket_path("malformed.sock");
  serve::ScoreServer server(cfg, model.factory());
  server.start();

  // Raw connection speaking garbage.
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, cfg.unix_path.c_str(),
               sizeof(addr.sun_path) - 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  serve::Frame frame;
  ASSERT_EQ(serve::read_frame(fd, frame), serve::ReadStatus::kOk);
  ASSERT_EQ(frame.type, serve::FrameType::kHello);

  unsigned char garbage[serve::kFrameHeaderBytes];
  std::memset(garbage, 0xFF, sizeof(garbage));
  ASSERT_EQ(::send(fd, garbage, sizeof(garbage), 0),
            static_cast<ssize_t>(sizeof(garbage)));
  // The server answers with a typed bad-frame error, then closes only
  // this connection.
  ASSERT_EQ(serve::read_frame(fd, frame), serve::ReadStatus::kOk);
  EXPECT_EQ(frame.type, serve::FrameType::kScoreError);
  ASSERT_GE(frame.payload.size(), 16u);
  EXPECT_EQ(static_cast<serve::WireError>(
                serve::get_u64(frame.payload.data() + 8)),
            serve::WireError::kBadFrame);
  EXPECT_EQ(serve::read_frame(fd, frame), serve::ReadStatus::kEof);
  ::close(fd);

  // A truncated frame — header promising bytes that never arrive — also
  // kills only its own connection.
  const int fd2 = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd2, 0);
  ASSERT_EQ(::connect(fd2, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  ASSERT_EQ(serve::read_frame(fd2, frame), serve::ReadStatus::kOk);
  unsigned char header[serve::kFrameHeaderBytes];
  serve::encode_frame_header(serve::FrameType::kScoreRequest, 100, header);
  ASSERT_EQ(::send(fd2, header, sizeof(header), 0),
            static_cast<ssize_t>(sizeof(header)));
  ::close(fd2);  // truncate mid-frame

  // The daemon is alive and scoring for everyone else.
  serve::ScoreClient client = serve::ScoreClient::connect_unix(cfg.unix_path);
  const std::vector<float> x = sample_for(9);
  EXPECT_EQ(client.score(x), direct_scores(model, x));
  EXPECT_GE(server.stats().wire_errors, 1);
  server.stop();
}

TEST(Serve, BadRequestErrorCarriesParsedId) {
  const TestModel model;
  serve::ScoreServerConfig cfg;
  cfg.unix_path = socket_path("badid.sock");
  serve::ScoreServer server(cfg, model.factory());
  server.start();

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, cfg.unix_path.c_str(),
               sizeof(addr.sun_path) - 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  serve::Frame frame;
  ASSERT_EQ(serve::read_frame(fd, frame), serve::ReadStatus::kOk);
  ASSERT_EQ(frame.type, serve::FrameType::kHello);

  // A well-framed score request with a parsable id but the wrong payload
  // size: the typed bad-frame error must echo the id (not 0), so a
  // pipelined client can attribute the failure before the drop.
  constexpr std::uint64_t kId = 0xDEADBEEFCAFEull;
  std::vector<char> payload;
  serve::put_u64(payload, kId);
  payload.push_back(0);  // 9 bytes: never 8 + sample_bytes
  unsigned char header[serve::kFrameHeaderBytes];
  serve::encode_frame_header(serve::FrameType::kScoreRequest,
                             static_cast<std::uint32_t>(payload.size()),
                             header);
  ASSERT_EQ(::send(fd, header, sizeof(header), 0),
            static_cast<ssize_t>(sizeof(header)));
  ASSERT_EQ(::send(fd, payload.data(), payload.size(), 0),
            static_cast<ssize_t>(payload.size()));

  ASSERT_EQ(serve::read_frame(fd, frame), serve::ReadStatus::kOk);
  EXPECT_EQ(frame.type, serve::FrameType::kScoreError);
  ASSERT_GE(frame.payload.size(), 16u);
  EXPECT_EQ(serve::get_u64(frame.payload.data()), kId);
  EXPECT_EQ(static_cast<serve::WireError>(
                serve::get_u64(frame.payload.data() + 8)),
            serve::WireError::kBadFrame);
  EXPECT_EQ(serve::read_frame(fd, frame), serve::ReadStatus::kEof);
  ::close(fd);
  server.stop();
}

// Regression for the fd-lifetime bug: the reader used to close the
// connection's descriptor as soon as it saw EOF, while responses for
// that connection's in-flight jobs were still pending — the late
// write_frame then hit a closed (and potentially recycled) descriptor
// number. The Connection must own the fd and keep it open until the
// last in-flight response is written; observable contract: a client
// that half-closes its send side with a request still inside the
// scorer must still receive its answer.
TEST(Serve, HalfClosedClientStillGetsInFlightResponses) {
  auto gate = std::make_shared<Gate>();
  serve::ScoreServerConfig cfg;
  cfg.unix_path = socket_path("halfclose.sock");
  cfg.batcher.max_batch = 1;
  cfg.batcher.max_queue = 8;
  cfg.batcher.max_delay_us = 0;
  serve::ScoreServer server(
      cfg, [gate] { return std::make_unique<GatedScorer>(gate); });
  server.start();

  // Raw socket: ScoreClient has no half-close surface.
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, cfg.unix_path.c_str(),
               sizeof(addr.sun_path) - 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  serve::Frame frame;
  ASSERT_EQ(serve::read_frame(fd, frame), serve::ReadStatus::kOk);
  ASSERT_EQ(frame.type, serve::FrameType::kHello);

  const std::vector<float> x = sample_for(21);
  std::vector<char> payload;
  serve::put_u64(payload, 7);
  serve::put_f32(payload, x);
  ASSERT_TRUE(serve::write_frame(fd, serve::FrameType::kScoreRequest,
                                 {payload.data(), payload.size()}));
  while (gate->entered.load() == 0) std::this_thread::yield();

  // Half-close with the request parked inside the scorer: the server's
  // reader sees EOF now, long before the response exists.
  ASSERT_EQ(::shutdown(fd, SHUT_WR), 0);
  std::this_thread::sleep_for(50ms);  // let the reader observe EOF, exit
  gate->release();

  // The in-flight response must still arrive on this connection...
  ASSERT_EQ(serve::read_frame(fd, frame), serve::ReadStatus::kOk);
  EXPECT_EQ(frame.type, serve::FrameType::kScoreOk);
  ASSERT_EQ(frame.payload.size(), 8u + kOut * sizeof(float));
  EXPECT_EQ(serve::get_u64(frame.payload.data()), 7u);
  float s0 = 0.0f;
  std::memcpy(&s0, frame.payload.data() + 8, sizeof(s0));
  EXPECT_EQ(s0, x[0]);  // GatedScorer echoes x0
  // ...and only then does the server's side close (last Connection
  // reference dropped with the delivered job).
  EXPECT_EQ(serve::read_frame(fd, frame), serve::ReadStatus::kEof);
  ::close(fd);

  // The daemon keeps serving fresh connections afterwards.
  serve::ScoreClient fresh = serve::ScoreClient::connect_unix(cfg.unix_path);
  const std::vector<float> y = sample_for(22);
  const std::vector<float> got = fresh.score(y);
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kOut));
  EXPECT_EQ(got[0], y[0]);
  EXPECT_EQ(server.stats().internal_errors, 0);
  server.stop();
}

TEST(Serve, GracefulStopDrainsEveryAdmittedRequest) {
  auto gate = std::make_shared<Gate>();
  serve::ScoreServerConfig cfg;
  cfg.unix_path = socket_path("drain.sock");
  cfg.batcher.max_batch = 1;
  cfg.batcher.max_queue = 8;
  cfg.batcher.max_delay_us = 0;
  serve::ScoreServer server(
      cfg, [gate] { return std::make_unique<GatedScorer>(gate); });
  server.start();

  serve::ScoreClient client = serve::ScoreClient::connect_unix(cfg.unix_path);
  const std::vector<float> x = sample_for(3);
  client.send_request(1, x);
  while (gate->entered.load() == 0) std::this_thread::yield();
  client.send_request(2, x);
  client.send_request(3, x);
  while (server.queue_depth() < 2) std::this_thread::yield();

  // Stop with one request inside the scorer and two admitted behind it.
  std::thread stopper([&] { server.stop(); });
  std::this_thread::sleep_for(50ms);  // let stop() reach the drain phase
  gate->release();
  stopper.join();

  // Every admitted request was answered before the connection closed.
  std::vector<std::uint64_t> answered;
  for (int i = 0; i < 3; ++i) {
    const serve::ScoreResponse r = client.recv_response();
    EXPECT_TRUE(r.ok);
    answered.push_back(r.id);
  }
  EXPECT_EQ(answered, (std::vector<std::uint64_t>{1, 2, 3}));
  const serve::ServerStats stats = server.stats();
  EXPECT_EQ(stats.requests, 3);
  EXPECT_EQ(stats.scored, 3);
}

TEST(Serve, TcpEphemeralPortServes) {
  const TestModel model;
  serve::ScoreServerConfig cfg;
  cfg.tcp_port = 0;  // kernel-assigned
  serve::ScoreServer server(cfg, model.factory());
  server.start();
  ASSERT_GT(server.tcp_port(), 0);

  serve::ScoreClient client =
      serve::ScoreClient::connect_tcp("127.0.0.1", server.tcp_port());
  const std::vector<float> x = sample_for(17);
  EXPECT_EQ(client.score(x), direct_scores(model, x));
  server.stop();
}

}  // namespace
}  // namespace sne
