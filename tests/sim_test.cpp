// sim_test.cpp — the survey simulator: galaxy rendering, PSFs, noise,
// scheduling, difference imaging, photometric measurement, and the lazy
// dataset builder (determinism, flux recovery, class balance).
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "astro/photometry.h"
#include "sim/artifacts.h"
#include "sim/dataset_builder.h"
#include "sim/difference.h"
#include "sim/galaxy_catalog.h"
#include "sim/image_ops.h"
#include "sim/measurement.h"
#include "sim/noise.h"
#include "sim/pgm.h"
#include "sim/position_sampler.h"
#include "sim/psf.h"
#include "sim/renderer.h"
#include "sim/scheduler.h"
#include "sim/sersic.h"

namespace sne::sim {
namespace {

SnDataset::Config small_config(std::int64_t n = 12,
                               std::uint64_t seed = 2024) {
  SnDataset::Config cfg;
  cfg.num_samples = n;
  cfg.seed = seed;
  cfg.catalog.count = 200;
  return cfg;
}

// ---- image ops ----

TEST(ImageOps, CenterCropTakesMiddle) {
  Tensor img({5, 5});
  img.at(2, 2) = 1.0f;
  const Tensor crop = center_crop(img, 3);
  EXPECT_EQ(crop.shape(), (Shape{3, 3}));
  EXPECT_FLOAT_EQ(crop.at(1, 1), 1.0f);
}

TEST(ImageOps, CenterCropRejectsOversize) {
  EXPECT_THROW(center_crop(Tensor({4, 4}), 5), std::invalid_argument);
  EXPECT_THROW(center_crop(Tensor({4, 4}), 0), std::invalid_argument);
}

TEST(ImageOps, GaussianBlurPreservesInteriorFlux) {
  Tensor img({33, 33});
  img.at(16, 16) = 100.0f;
  const Tensor blurred = gaussian_blur(img, 2.0);
  EXPECT_NEAR(blurred.sum(), 100.0f, 0.5f);
  EXPECT_LT(blurred.at(16, 16), 100.0f);
  EXPECT_GT(blurred.at(16, 18), 0.0f);
}

TEST(ImageOps, GaussianBlurZeroSigmaIsIdentity) {
  Rng rng(1);
  const Tensor img = Tensor::randn({8, 8}, rng);
  EXPECT_TRUE(gaussian_blur(img, 0.0).equals(img));
}

TEST(ImageOps, ApertureSumCountsDisk) {
  Tensor img({11, 11}, 1.0f);
  const double s = aperture_sum(img, 5.0, 5.0, 1.1);
  EXPECT_DOUBLE_EQ(s, 5.0);  // center + 4 neighbors
}

// ---- PSF ----

TEST(Psf, PointSourceFluxConserved) {
  const GaussianPsf psf(3.5);
  const Tensor stamp = psf.render_point_source(65, 65, 32.0, 32.0, 250.0);
  EXPECT_NEAR(stamp.sum(), 250.0f, 0.5f);
  EXPECT_GT(stamp.at(32, 32), stamp.at(32, 36));
}

TEST(Psf, SubPixelCentroid) {
  const GaussianPsf psf(3.0);
  const Tensor stamp = psf.render_point_source(21, 21, 10.0, 10.4, 1.0);
  // Centroid x should be ≈ 10.4.
  double cx = 0.0;
  for (std::int64_t y = 0; y < 21; ++y) {
    for (std::int64_t x = 0; x < 21; ++x) {
      cx += stamp.at(y, x) * static_cast<double>(x);
    }
  }
  EXPECT_NEAR(cx / stamp.sum(), 10.4, 0.01);
}

TEST(Psf, MatchingSigmaQuadrature) {
  const GaussianPsf narrow(2.0);
  const GaussianPsf broad(4.0);
  const double match = narrow.matching_sigma(broad);
  EXPECT_NEAR(match * match + narrow.sigma() * narrow.sigma(),
              broad.sigma() * broad.sigma(), 1e-9);
  EXPECT_THROW(broad.matching_sigma(narrow), std::invalid_argument);
}

TEST(Psf, MoffatFluxNormalizedAndPeaked) {
  const MoffatPsf psf(3.5, 3.5);
  const Tensor stamp = psf.render_point_source(65, 65, 32.0, 32.0, 200.0);
  EXPECT_NEAR(stamp.sum(), 200.0f, 0.5f);
  EXPECT_GT(stamp.at(32, 32), stamp.at(32, 38));
}

TEST(Psf, MoffatHasHeavierWingsThanGaussian) {
  // At the same FWHM, a Moffat profile puts more flux beyond ~2×FWHM.
  const double fwhm = 3.5;
  const MoffatPsf moffat(fwhm, 3.0);
  const GaussianPsf gauss(fwhm);
  const Tensor m = moffat.render_point_source(65, 65, 32.0, 32.0, 1.0);
  const Tensor g = gauss.render_point_source(65, 65, 32.0, 32.0, 1.0);
  const double core_m = aperture_sum(m, 32.0, 32.0, 2.0 * fwhm);
  const double core_g = aperture_sum(g, 32.0, 32.0, 2.0 * fwhm);
  EXPECT_LT(core_m, core_g);  // less flux in the core = more in the wings
}

TEST(Psf, MoffatRejectsBadParams) {
  EXPECT_THROW(MoffatPsf(0.0), std::invalid_argument);
  EXPECT_THROW(MoffatPsf(3.0, 1.0), std::invalid_argument);
}

// ---- Sérsic ----

class SersicIndex : public ::testing::TestWithParam<double> {};

TEST_P(SersicIndex, FluxNormalizedOnGrid) {
  SersicProfile p;
  p.sersic_n = GetParam();
  p.half_light_radius = 4.0;
  p.total_flux = 500.0;
  const Tensor img = render_sersic(p, 65, 65, 32.0, 32.0);
  EXPECT_NEAR(img.sum(), 500.0f, 0.5f);
  EXPECT_GT(img.at(32, 32), img.at(32, 45));
}

INSTANTIATE_TEST_SUITE_P(IndexSweep, SersicIndex,
                         ::testing::Values(0.5, 1.0, 2.0, 4.0));

TEST(Sersic, EllipticityFollowsAxisRatio) {
  SersicProfile p;
  p.half_light_radius = 6.0;
  p.axis_ratio = 0.4;
  p.position_angle = 0.0;  // major axis along +x
  p.total_flux = 100.0;
  const Tensor img = render_sersic(p, 65, 65, 32.0, 32.0);
  // Brighter along x (major axis) than along y at the same offset.
  EXPECT_GT(img.at(32, 40), img.at(40, 32));
}

TEST(Sersic, BnApproximation) {
  EXPECT_NEAR(sersic_bn(1.0), 1.6765, 0.01);   // exponential disk
  EXPECT_NEAR(sersic_bn(4.0), 7.6692, 0.01);   // de Vaucouleurs
}

// ---- noise ----

TEST(Noise, ZeroMeanAfterSkySubtraction) {
  NoiseModel model;
  Rng rng(2);
  const Tensor dark({64, 64});  // no source
  const Tensor noisy = apply_noise(dark, model, rng);
  EXPECT_NEAR(noisy.mean(), 0.0f, 1.5f);
}

TEST(Noise, VarianceMatchesSkyPlusReadNoise) {
  NoiseModel model;
  model.sky_level = 400.0;
  model.read_noise = 5.0;
  model.gain = 1.0;
  Rng rng(3);
  const Tensor noisy = apply_noise(Tensor({128, 128}), model, rng);
  double var = 0.0;
  for (std::int64_t i = 0; i < noisy.size(); ++i) {
    var += static_cast<double>(noisy[i]) * noisy[i];
  }
  var /= static_cast<double>(noisy.size());
  EXPECT_NEAR(var, 425.0, 20.0);
}

TEST(Noise, FluxSigmaGrowsWithSeeing) {
  NoiseModel model;
  EXPECT_GT(point_source_flux_sigma(model, 3.0, 0.0),
            point_source_flux_sigma(model, 1.5, 0.0));
  EXPECT_GT(point_source_flux_sigma(model, 2.0, 1e5),
            point_source_flux_sigma(model, 2.0, 0.0));
}

// ---- catalog ----

TEST(Catalog, RespectsRedshiftCut) {
  GalaxyCatalog::Config cfg;
  cfg.count = 2000;
  const GalaxyCatalog cat = GalaxyCatalog::generate(cfg);
  ASSERT_EQ(cat.size(), 2000);
  for (const Galaxy& g : cat.galaxies()) {
    EXPECT_GE(g.photo_z, 0.1);
    EXPECT_LE(g.photo_z, 2.0);
    EXPECT_GT(g.morphology.total_flux, 0.0);
  }
}

TEST(Catalog, RedshiftDistributionPeaksBelowOne) {
  GalaxyCatalog::Config cfg;
  cfg.count = 5000;
  const GalaxyCatalog cat = GalaxyCatalog::generate(cfg);
  const auto hist = cat.redshift_histogram(19);
  const auto peak_bin = static_cast<std::size_t>(std::distance(
      hist.begin(), std::max_element(hist.begin(), hist.end())));
  const double peak_z = 0.1 + (static_cast<double>(peak_bin) + 0.5) *
                                  (2.0 - 0.1) / 19.0;
  EXPECT_GT(peak_z, 0.3);
  EXPECT_LT(peak_z, 1.1);
}

TEST(Catalog, DeterministicInSeed) {
  GalaxyCatalog::Config cfg;
  cfg.count = 50;
  const GalaxyCatalog a = GalaxyCatalog::generate(cfg);
  const GalaxyCatalog b = GalaxyCatalog::generate(cfg);
  EXPECT_EQ(a.galaxy(17).photo_z, b.galaxy(17).photo_z);
  EXPECT_EQ(a.galaxy(17).morphology.sersic_n, b.galaxy(17).morphology.sersic_n);
}

TEST(Catalog, HigherRedshiftGalaxiesSmallerOnAverage) {
  GalaxyCatalog::Config cfg;
  cfg.count = 4000;
  const GalaxyCatalog cat = GalaxyCatalog::generate(cfg);
  double size_lo = 0.0, n_lo = 0.0, size_hi = 0.0, n_hi = 0.0;
  for (const Galaxy& g : cat.galaxies()) {
    if (g.photo_z < 0.5) {
      size_lo += g.morphology.half_light_radius;
      n_lo += 1.0;
    } else if (g.photo_z > 1.2) {
      size_hi += g.morphology.half_light_radius;
      n_hi += 1.0;
    }
  }
  ASSERT_GT(n_lo, 0.0);
  ASSERT_GT(n_hi, 0.0);
  EXPECT_GT(size_lo / n_lo, size_hi / n_hi);
}

// ---- scheduler ----

TEST(Scheduler, FourEpochsPerBand) {
  Rng rng(4);
  const Schedule s = make_schedule({}, rng);
  for (const astro::Band b : astro::kAllBands) {
    EXPECT_EQ(s.band_observations(b).size(), 4u);
  }
  EXPECT_EQ(s.observations.size(), 20u);
}

TEST(Scheduler, AtMostTwoBandsPerDay) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const Schedule s = make_schedule({}, rng);
    std::map<std::int64_t, int> per_day;
    for (const Observation& o : s.observations) {
      ++per_day[static_cast<std::int64_t>(std::floor(o.mjd))];
    }
    for (const auto& [day, count] : per_day) EXPECT_LE(count, 2);
  }
}

TEST(Scheduler, SortedAndWithinSeason) {
  Rng rng(6);
  ScheduleConfig cfg;
  cfg.start_mjd = 100.0;
  const Schedule s = make_schedule(cfg, rng);
  double prev = -1e9;
  for (const Observation& o : s.observations) {
    EXPECT_GE(o.mjd, prev);
    prev = o.mjd;
    EXPECT_GE(o.mjd, 100.0);
    EXPECT_LE(o.mjd, 160.0 + 1.0);
    EXPECT_GT(o.seeing_fwhm_px, 0.0);
    EXPECT_GT(o.transparency, 0.0);
    EXPECT_LE(o.transparency, 1.0);
  }
}

TEST(Scheduler, ReferencesPredateSeasonWithGoodSeeing) {
  Rng rng(7);
  ScheduleConfig cfg;
  const Schedule s = make_schedule(cfg, rng);
  for (const Observation& ref : s.references) {
    EXPECT_LT(ref.mjd, cfg.start_mjd);
    EXPECT_LT(ref.seeing_fwhm_px, cfg.mean_seeing_fwhm_px);
  }
}

// ---- position sampler ----

TEST(PositionSampler, StaysWithinTruncationRadius) {
  Rng rng(8);
  SersicProfile host;
  host.half_light_radius = 5.0;
  host.axis_ratio = 0.5;
  for (int i = 0; i < 2000; ++i) {
    const SnOffset off = sample_sn_offset(host, rng, 3.0);
    EXPECT_LE(off.radius(), 3.0 * 5.0 + 1e-9);
  }
}

TEST(PositionSampler, FollowsHostEllipticity) {
  Rng rng(9);
  SersicProfile host;
  host.half_light_radius = 6.0;
  host.axis_ratio = 0.3;
  host.position_angle = 0.0;  // major axis = x
  double sx = 0.0, sy = 0.0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    const SnOffset off = sample_sn_offset(host, rng);
    sx += off.dx * off.dx;
    sy += off.dy * off.dy;
  }
  EXPECT_GT(sx / n, 3.0 * sy / n);  // spread along major axis dominates
}

// ---- renderer + difference imaging ----

TEST(Renderer, DifferenceRecoversInjectedFlux) {
  const ImageRenderer renderer;
  GalaxyCatalog::Config ccfg;
  ccfg.count = 10;
  const GalaxyCatalog cat = GalaxyCatalog::generate(ccfg);
  const Galaxy& gal = cat.galaxy(0);

  Observation ref;
  ref.seeing_fwhm_px = 3.0;
  ref.transparency = 1.0;
  Observation obs;
  obs.seeing_fwhm_px = 3.6;
  obs.transparency = 0.9;

  const double injected = 400.0;  // bright SN, mag ≈ 20.5
  SnOffset offset{2.0, -3.0};

  // Average the measured flux over independent noise realizations.
  Rng rng(10);
  double measured = 0.0;
  const int trials = 8;
  for (int t = 0; t < trials; ++t) {
    const Tensor ref_img = renderer.render_reference(gal, ref, rng);
    const Tensor obs_img =
        renderer.render_observation(gal, obs, injected, offset, rng);
    const Tensor diff = psf_matched_difference(obs_img, ref_img, obs, ref);
    // The SN is at host center + offset (± pointing jitter ≤ 0.3 px).
    const double c = renderer.center();
    measured += aperture_sum(diff, c + offset.dy, c + offset.dx, 12.0) /
                obs.transparency;
  }
  measured /= trials;
  EXPECT_NEAR(measured, injected, 0.15 * injected);
}

TEST(Renderer, NoSupernovaDifferenceIsNoise) {
  const ImageRenderer renderer;
  GalaxyCatalog::Config ccfg;
  ccfg.count = 10;
  const GalaxyCatalog cat = GalaxyCatalog::generate(ccfg);
  const Galaxy& gal = cat.galaxy(3);

  Observation ref;
  ref.seeing_fwhm_px = 3.0;
  Observation obs;
  obs.seeing_fwhm_px = 3.4;
  obs.transparency = 0.95;

  Rng rng(11);
  double total = 0.0;
  const int trials = 8;
  for (int t = 0; t < trials; ++t) {
    const Tensor ref_img = renderer.render_reference(gal, ref, rng);
    const Tensor obs_img =
        renderer.render_observation(gal, obs, 0.0, {0.0, 0.0}, rng);
    const Tensor diff = psf_matched_difference(obs_img, ref_img, obs, ref);
    total += aperture_sum(diff, renderer.center(), renderer.center(), 10.0);
  }
  // Mean residual should be small compared to a detectable SN (~100 flux).
  EXPECT_LT(std::abs(total / trials), 60.0);
}

TEST(Measurement, PsfWeightedFluxUnbiasedOnCleanStamp) {
  const GaussianPsf psf(3.2);
  const Tensor stamp = psf.render_point_source(65, 65, 30.0, 35.0, 120.0);
  const double est = psf_weighted_flux(stamp, 30.0, 35.0, psf.sigma());
  EXPECT_NEAR(est, 120.0, 1.0);
}

TEST(Measurement, SampledFluxStatistics) {
  const astro::Cosmology cosmo;
  astro::SnParams p = {astro::SnType::Ia, 0.4, 1.0, 0.0, 20.0, -19.3};
  const astro::LightCurve lc(p, cosmo);
  Observation obs;
  obs.band = astro::Band::r;
  obs.mjd = 20.0;
  NoiseModel noise;
  noise.gain = 30.0;

  Rng rng(12);
  const double truth = lc.flux(astro::Band::r, 20.0);
  double sum = 0.0;
  const int n = 400;
  for (int i = 0; i < n; ++i) {
    sum += sample_measurement(lc, obs, noise, rng).flux;
  }
  EXPECT_NEAR(sum / n, truth, 0.1 * truth + 2.0);
}

// ---- dataset builder ----

TEST(Dataset, BalancedClasses) {
  const SnDataset data = SnDataset::build(small_config(40));
  int n_ia = 0;
  for (std::int64_t i = 0; i < data.size(); ++i) {
    if (data.is_ia(i)) ++n_ia;
  }
  EXPECT_EQ(n_ia, 20);
}

TEST(Dataset, ImagesDeterministic) {
  const SnDataset data = SnDataset::build(small_config());
  const Tensor a = data.observation_image(3, astro::Band::i, 2);
  const Tensor b = data.observation_image(3, astro::Band::i, 2);
  EXPECT_TRUE(a.equals(b));
  const Tensor ra = data.reference_image(3, astro::Band::i);
  const Tensor rb = data.reference_image(3, astro::Band::i);
  EXPECT_TRUE(ra.equals(rb));
}

TEST(Dataset, DifferentEpochsDiffer) {
  const SnDataset data = SnDataset::build(small_config());
  const Tensor a = data.observation_image(0, astro::Band::r, 0);
  const Tensor b = data.observation_image(0, astro::Band::r, 1);
  EXPECT_FALSE(a.allclose(b, 1e-3f));
}

TEST(Dataset, StampShapes) {
  const SnDataset data = SnDataset::build(small_config());
  EXPECT_EQ(data.reference_image(0, astro::Band::g).shape(),
            (Shape{kStampSize, kStampSize}));
  EXPECT_EQ(data.difference_image(0, astro::Band::g, 0).shape(),
            (Shape{kStampSize, kStampSize}));
}

TEST(Dataset, RedshiftsComeFromHosts) {
  const SnDataset data = SnDataset::build(small_config(30));
  for (std::int64_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(data.spec(i).sn.redshift, data.host(i).photo_z);
  }
}

TEST(Dataset, TrueMagnitudeClamped) {
  const SnDataset data = SnDataset::build(small_config(30));
  for (std::int64_t i = 0; i < data.size(); ++i) {
    for (std::int64_t e = 0; e < 4; ++e) {
      const double m = data.true_magnitude(i, astro::Band::g, e);
      EXPECT_GE(m, 10.0);
      EXPECT_LE(m, 32.0);
    }
  }
}

TEST(Dataset, MeasuredLightCurveSortedAndComplete) {
  const SnDataset data = SnDataset::build(small_config());
  const auto lc = data.measured_light_curve(1);
  EXPECT_EQ(lc.size(), 20u);
  for (std::size_t k = 1; k < lc.size(); ++k) {
    EXPECT_GE(lc[k].mjd, lc[k - 1].mjd);
  }
  for (const FluxMeasurement& m : lc) EXPECT_GT(m.flux_error, 0.0);
}

TEST(Dataset, MeasuredPointAgreesWithLightCurveEntry) {
  const SnDataset data = SnDataset::build(small_config());
  const FluxMeasurement p = data.measured_point(2, astro::Band::z, 1);
  const auto lc = data.measured_light_curve(2);
  bool found = false;
  for (const FluxMeasurement& m : lc) {
    if (m.band == p.band && m.mjd == p.mjd) {
      EXPECT_EQ(m.flux, p.flux);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Dataset, PeakInsideSeason) {
  const SnDataset data = SnDataset::build(small_config(30));
  for (std::int64_t i = 0; i < data.size(); ++i) {
    const double peak = data.spec(i).sn.peak_mjd;
    EXPECT_GE(peak, data.config().schedule.start_mjd);
    EXPECT_LE(peak, data.config().schedule.start_mjd +
                        data.config().schedule.season_days);
  }
}

TEST(Dataset, ObservationContainsSnFluxAboveReference) {
  // For a bright epoch, obs − matched ref integrates to ≈ the SN flux.
  const SnDataset data = SnDataset::build(small_config(20, 555));
  int checked = 0;
  for (std::int64_t i = 0; i < data.size() && checked < 3; ++i) {
    for (std::int64_t e = 0; e < 4 && checked < 3; ++e) {
      const double truth = data.true_flux(i, astro::Band::i, e);
      if (truth < 200.0) continue;  // only bright, high-SNR cases
      const Tensor diff = data.difference_image(i, astro::Band::i, e);
      const sim::Observation obs = data.band_epoch(i, astro::Band::i, e);
      const double c = 32.0;
      const double measured =
          aperture_sum(diff, c + data.spec(i).offset.dy,
                       c + data.spec(i).offset.dx, 12.0) /
          obs.transparency;
      EXPECT_NEAR(measured, truth, 0.4 * truth);
      ++checked;
    }
  }
  EXPECT_GT(checked, 0);
}

// ---- PGM export ----

TEST(Pgm, WellFormedHeaderAndSize) {
  Rng rng(50);
  const Tensor img = Tensor::randn({20, 30}, rng);
  const std::string pgm = encode_pgm(img);
  EXPECT_EQ(pgm.rfind("P5\n30 20\n255\n", 0), 0u);
  // Header + exactly one byte per pixel.
  const std::size_t header = pgm.find("255\n") + 4;
  EXPECT_EQ(pgm.size() - header, 600u);
}

TEST(Pgm, BrightSourceMapsBright) {
  Tensor img({21, 21});
  Rng rng(51);
  for (std::int64_t i = 0; i < img.size(); ++i) {
    img[i] = static_cast<float>(rng.normal(0.0, 1.0));
  }
  img.at(10, 10) = 500.0f;
  const std::string pgm = encode_pgm(img);
  const std::size_t header = pgm.find("255\n") + 4;
  const auto center = static_cast<unsigned char>(pgm[header + 10 * 21 + 10]);
  EXPECT_GT(static_cast<int>(center), 240);
}

TEST(Pgm, ConstantImageRendersWithoutCrash) {
  const Tensor img({8, 8}, 3.0f);
  EXPECT_NO_THROW(encode_pgm(img));
}

TEST(Pgm, RejectsBadInputs) {
  EXPECT_THROW(encode_pgm(Tensor({4})), std::invalid_argument);
  EXPECT_THROW(encode_pgm(Tensor({4, 4}), -1.0), std::invalid_argument);
}

// ---- artifacts / real-bogus ----

class ArtifactKinds : public ::testing::TestWithParam<ArtifactKind> {};

TEST_P(ArtifactKinds, ChangesTheStamp) {
  Rng rng(1);
  Tensor stamp({65, 65});
  Tensor before = stamp;
  inject_artifact(stamp, GetParam(), 100.0, rng);
  EXPECT_FALSE(stamp.equals(before));
}

TEST_P(ArtifactKinds, DeterministicGivenRngState) {
  Tensor a({65, 65});
  Tensor b({65, 65});
  Rng rng_a(7);
  Rng rng_b(7);
  inject_artifact(a, GetParam(), 50.0, rng_a);
  inject_artifact(b, GetParam(), 50.0, rng_b);
  EXPECT_TRUE(a.equals(b));
}

INSTANTIATE_TEST_SUITE_P(AllKinds, ArtifactKinds,
                         ::testing::ValuesIn(kAllArtifactKinds));

TEST(Artifacts, DipoleRoughlyFluxNeutral) {
  Rng rng(3);
  Tensor stamp({65, 65});
  inject_artifact(stamp, ArtifactKind::Dipole, 200.0, rng);
  // Positive and negative lobes nearly cancel in total flux.
  EXPECT_LT(std::abs(stamp.sum()), 0.8f * 200.0f);
  EXPECT_GT(stamp.max(), 0.0f);
  EXPECT_LT(stamp.min(), 0.0f);
}

TEST(Artifacts, CosmicRayIsCompactAndSharp) {
  Rng rng(4);
  Tensor stamp({65, 65});
  inject_artifact(stamp, ArtifactKind::CosmicRay, 300.0, rng);
  std::int64_t touched = 0;
  for (std::int64_t i = 0; i < stamp.size(); ++i) {
    if (stamp[i] != 0.0f) ++touched;
  }
  EXPECT_GT(touched, 3);
  EXPECT_LT(touched, 80);  // a streak, not a blob
}

TEST(Artifacts, RejectsBadInputs) {
  Rng rng(5);
  Tensor stamp({65, 65});
  EXPECT_THROW(inject_artifact(stamp, ArtifactKind::HotPixel, 0.0, rng),
               std::invalid_argument);
  Tensor not_an_image({4});
  EXPECT_THROW(
      inject_artifact(not_an_image, ArtifactKind::HotPixel, 1.0, rng),
      std::invalid_argument);
}

TEST(RealBogus, BalancedAndWellFormed) {
  const SnDataset data = SnDataset::build(small_config(30, 808));
  std::vector<std::int64_t> samples;
  for (std::int64_t i = 0; i < data.size(); ++i) samples.push_back(i);
  const nn::LazyDataset rb = make_real_bogus_dataset(data, samples, 33);
  ASSERT_GT(rb.size(), 0);
  ASSERT_EQ(rb.size() % 2, 0);
  float positives = 0.0f;
  for (std::int64_t k = 0; k < rb.size(); ++k) {
    const nn::Sample s = rb.get(k);
    EXPECT_EQ(s.x.shape(), (Shape{1, 33, 33}));
    positives += s.y[0];
  }
  EXPECT_FLOAT_EQ(positives, static_cast<float>(rb.size()) / 2.0f);
}

TEST(RealBogus, Deterministic) {
  const SnDataset data = SnDataset::build(small_config(12, 909));
  std::vector<std::int64_t> samples{0, 1, 2, 3, 4, 5};
  const nn::LazyDataset a = make_real_bogus_dataset(data, samples, 33);
  const nn::LazyDataset b = make_real_bogus_dataset(data, samples, 33);
  for (std::int64_t k = 0; k < std::min<std::int64_t>(a.size(), 8); ++k) {
    EXPECT_TRUE(a.get(k).x.equals(b.get(k).x));
  }
}

}  // namespace
}  // namespace sne::sim
