// snapshot_test.cpp — the rendered-dataset snapshot cache: bitwise
// round-trip through write_snapshot/SnapshotDataset, header validation
// against corruption and truncation (malformed counts must throw before
// any speculative allocation), the zero-allocation replay pin, and the
// stream-budget regression for the SNDS dataset reader that shares the
// same hardening.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <new>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "data/snapshot.h"
#include "nn/dataset.h"
#include "sim/dataset_builder.h"
#include "sim/dataset_io.h"
#include "tensor/tensor.h"

// Allocation counter for the snapshot replay pin; armed only inside the
// measured window so gtest bookkeeping stays invisible.
namespace {
std::atomic<bool> g_count_allocs{false};
std::atomic<std::int64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace sne {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + name;
}

// Deterministic synthetic dataset with recognizable per-sample content.
nn::LazyDataset make_source(std::int64_t n) {
  return nn::LazyDataset(n, [](std::int64_t i) {
    Tensor x({2, 3});
    for (std::int64_t k = 0; k < x.size(); ++k) {
      x[k] = static_cast<float>(i * 100 + k) * 0.25f;
    }
    return nn::Sample{std::move(x),
                      Tensor({1}, static_cast<float>(i % 2))};
  });
}

bool same_bytes(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(),
                     static_cast<std::size_t>(a.size()) * sizeof(float)) == 0;
}

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(is),
                     std::istreambuf_iterator<char>());
}

void spit(const std::string& path, const std::string& bytes) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// Overwrites the little-endian u64 at byte offset `off`.
void poke_u64(std::string& bytes, std::size_t off, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    bytes[off + static_cast<std::size_t>(i)] =
        static_cast<char>((v >> (8 * i)) & 0xFF);
  }
}

TEST(Snapshot, RoundTripIsBitwiseIdentical) {
  const std::string path = temp_path("roundtrip.snap");
  const nn::LazyDataset source = make_source(11);
  data::write_snapshot(path, source, 4);  // partial final batch on purpose

  const data::SnapshotInfo info = data::read_snapshot_info(path);
  EXPECT_EQ(info.version, 1u);
  EXPECT_EQ(info.count, 11);
  EXPECT_EQ(info.x_shape, (Shape{2, 3}));
  EXPECT_EQ(info.y_shape, (Shape{1}));

  const data::SnapshotDataset snap(path);
  ASSERT_EQ(snap.size(), source.size());
  for (std::int64_t i = 0; i < snap.size(); ++i) {
    const nn::Sample want = source.get(i);
    const nn::Sample got = snap.get(i);
    EXPECT_TRUE(same_bytes(want.x, got.x)) << "sample " << i;
    EXPECT_TRUE(same_bytes(want.y, got.y)) << "sample " << i;
  }

  // Batches over a shuffled gather order match the live render too.
  const std::vector<std::int64_t> order = {7, 2, 9, 0, 10, 3, 1};
  const nn::Sample live = source.get_batch(order, 1, 5);
  const nn::Sample replay = snap.get_batch(order, 1, 5);
  EXPECT_TRUE(same_bytes(live.x, replay.x));
  EXPECT_TRUE(same_bytes(live.y, replay.y));
}

TEST(Snapshot, ReplayBatchIsAllocationFreeAfterWarmup) {
  const std::string path = temp_path("zeroalloc.snap");
  data::write_snapshot(path, make_source(16), 8);
  const data::SnapshotDataset snap(path);

  std::vector<std::int64_t> order(16);
  std::iota(order.begin(), order.end(), std::int64_t{0});
  nn::Sample batch;
  snap.get_batch_into(order, 0, 8, batch);  // warmup sizes the buffers

  g_alloc_count.store(0);
  g_count_allocs.store(true);
  snap.get_batch_into(order, 8, 8, batch);
  snap.get_batch_into(order, 0, 8, batch);
  g_count_allocs.store(false);
  EXPECT_EQ(g_alloc_count.load(), 0)
      << "snapshot replay must be pure pointer arithmetic + memcpy";
}

TEST(Snapshot, RejectsCorruptedMagicVersionAndDtype) {
  const std::string path = temp_path("corrupt.snap");
  data::write_snapshot(path, make_source(4), 4);
  const std::string good = slurp(path);

  std::string bad = good;
  bad[0] = 'X';
  spit(path, bad);
  EXPECT_THROW(data::read_snapshot_info(path), std::runtime_error);
  EXPECT_THROW(data::SnapshotDataset{path}, std::runtime_error);

  bad = good;
  poke_u64(bad, 8, 999);  // version field
  spit(path, bad);
  EXPECT_THROW(data::read_snapshot_info(path), std::runtime_error);

  bad = good;
  poke_u64(bad, 16, 2);  // dtype field
  spit(path, bad);
  EXPECT_THROW(data::read_snapshot_info(path), std::runtime_error);
}

TEST(Snapshot, TruncatedFileAndLyingCountAreRejectedBeforeAllocation) {
  const std::string path = temp_path("trunc.snap");
  data::write_snapshot(path, make_source(6), 6);
  const std::string good = slurp(path);

  // Chop the payload mid-sample: the header budget check must fail.
  spit(path, good.substr(0, good.size() - 13));
  EXPECT_THROW(data::SnapshotDataset{path}, std::runtime_error);

  // Header-only file (offset table and payload missing entirely).
  spit(path, good.substr(0, 64));
  EXPECT_THROW(data::read_snapshot_info(path), std::runtime_error);

  // A count far beyond the actual payload must be caught by the
  // stream-budget check, not by attempting a giant allocation. The
  // count u64 sits after magic(8) + version(8) + dtype(8) +
  // x(rank 8 + 2 extents · 8) + y(rank 8 + 1 extent · 8).
  std::string lying = good;
  poke_u64(lying, 8 + 8 + 8 + (8 + 2 * 8) + (8 + 8), 1'000'000);
  spit(path, lying);
  EXPECT_THROW(data::read_snapshot_info(path), std::runtime_error);

  // An offset pointing past the payload is rejected at load.
  std::string bad_offset = good;
  poke_u64(bad_offset, 8 + 8 + 8 + (8 + 2 * 8) + (8 + 8) + 8, 1 << 20);
  spit(path, bad_offset);
  EXPECT_THROW(data::SnapshotDataset{path}, std::runtime_error);
}

// Regression: count · (8 + record_bytes) wrapping around u64. The
// per-shape numel cap (2^40) and the count cap (1e8 < 2^27) each hold
// individually, yet their product reaches ~2^70 — so a crafted header
// can make the multiplication wrap to exactly 0, sail through the
// stream-budget check, and (via SnapshotDataset) turn the offset upper
// bound into an underflowed huge value that admits out-of-range mmap
// reads. Before the guard, this 64-byte file "validated" cleanly.
TEST(Snapshot, HeaderSizeOverflowIsRejected) {
  const std::string path = temp_path("overflow.snap");

  // x: rank 1, extent 2^39; y: rank 1, extent 2^39 - 2. Both pass the
  // per-shape cap; record_bytes = (2^40 - 2) · 4 = 2^42 - 8, so one
  // offset entry + record is exactly 2^42 bytes. count = 2^22 keeps
  // below kMaxCount while count · 2^42 = 2^64 ≡ 0 (mod 2^64).
  std::string header(64, '\0');
  std::memcpy(header.data(), "SNESNAP\0", 8);
  poke_u64(header, 8, 1);                          // version
  poke_u64(header, 16, 1);                         // dtype f32
  poke_u64(header, 24, 1);                         // x rank
  poke_u64(header, 32, 1ULL << 39);                // x extent
  poke_u64(header, 40, 1);                         // y rank
  poke_u64(header, 48, (1ULL << 39) - 2);          // y extent
  poke_u64(header, 56, 1ULL << 22);                // count
  spit(path, header);

  EXPECT_THROW(data::read_snapshot_info(path), std::runtime_error);
  EXPECT_THROW(data::SnapshotDataset{path}, std::runtime_error);
}

TEST(Snapshot, EmptyDatasetIsRejected) {
  const nn::LazyDataset empty(0, [](std::int64_t) {
    return nn::Sample{Tensor({1}), Tensor({1})};
  });
  EXPECT_THROW(data::write_snapshot(temp_path("none.snap"), empty),
               std::invalid_argument);
}

// Regression for the SNDS reader sharing the stream-budget hardening: a
// header whose sample count promises far more data than the file holds
// must throw instead of reserving gigabytes.
TEST(DatasetIoHardening, TruncatedSndsIsRejectedBeforeAllocation) {
  const std::string path = temp_path("trunc.snds");
  sim::SnDataset::Config cfg;
  cfg.num_samples = 4;
  cfg.catalog.count = 30;
  sim::save_dataset(path, sim::SnDataset::build(cfg));
  const std::string good = slurp(path);

  // Sanity: the intact file loads.
  EXPECT_EQ(sim::load_dataset(path).size(), 4);

  // Truncated mid-spec.
  spit(path, good.substr(0, good.size() - 21));
  EXPECT_THROW(sim::load_dataset(path), std::runtime_error);

  // Lying sample count: the SNDS layout is magic(4) + version(8) +
  // config, with the count u64 right before the first spec. Patch it to
  // an absurd value and keep the file size unchanged.
  // Find the count field by reproducing the writer's layout: it is at
  // (file) offset 4 + 8 + 27 * 8 = 228 (27 config fields, 8 bytes each).
  std::string lying = good;
  poke_u64(lying, 4 + 8 + 27 * 8, 9'000'000);
  spit(path, lying);
  EXPECT_THROW(sim::load_dataset(path), std::runtime_error);
}

}  // namespace
}  // namespace sne
