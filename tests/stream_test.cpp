// stream_test.cpp — the survey-night alert cascade: NightStream batch
// determinism across prefetch depths and thread counts, FilterCascade
// verdict/count invariance, completion-gate behavior at the threshold
// extremes, hand-computable tier accounting, and the CascadeScorer
// serving adapter.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <vector>

#include "core/inference.h"
#include "eval/cascade.h"
#include "serve/scorer.h"
#include "sim/dataset_builder.h"
#include "stream/cascade.h"
#include "stream/cascade_scorer.h"
#include "stream/night.h"
#include "stream/tier1.h"
#include "tensor/runtime.h"

namespace sne {
namespace {

// ---- eval accounting (pure arithmetic, hand-checkable) --------------

TEST(CascadeReport, HandComputedRates) {
  eval::CascadeCounts counts;
  // Tier 1: 100 alerts in (40 real), passes 50 of which 36 are real.
  counts.tiers.push_back({"tier1", 100, 50, 40, 36});
  // Joint: 10 candidates in (4 SNIa), accepts 5 of which 3 are SNIa.
  counts.tiers.push_back({"joint", 10, 5, 4, 3});
  counts.end_to_end = {"night", 20, 5, 4, 3};
  counts.evicted = 2;
  counts.incomplete = 1;

  const eval::CascadeReport report = eval::cascade_report(counts);
  ASSERT_EQ(report.tiers.size(), 2u);
  EXPECT_DOUBLE_EQ(report.tiers[0].recall, 36.0 / 40.0);
  // Negatives: 60 in, 14 passed -> 46 rejected.
  EXPECT_DOUBLE_EQ(report.tiers[0].rejection, 46.0 / 60.0);
  EXPECT_DOUBLE_EQ(report.tiers[0].purity, 36.0 / 50.0);
  EXPECT_DOUBLE_EQ(report.tiers[1].recall, 3.0 / 4.0);
  EXPECT_DOUBLE_EQ(report.tiers[1].rejection, 4.0 / 6.0);
  EXPECT_DOUBLE_EQ(report.tiers[1].purity, 3.0 / 5.0);
  EXPECT_DOUBLE_EQ(report.end_to_end.recall, 3.0 / 4.0);
  EXPECT_EQ(report.evicted, 2);
  EXPECT_EQ(report.incomplete, 1);
  EXPECT_FALSE(report.to_string().empty());
}

TEST(CascadeReport, EmptyDenominatorsReadVacuouslyPerfect) {
  eval::CascadeCounts counts;
  counts.tiers.push_back({"tier1", 0, 0, 0, 0});
  const eval::CascadeReport report = eval::cascade_report(counts);
  EXPECT_DOUBLE_EQ(report.tiers[0].recall, 1.0);
  EXPECT_DOUBLE_EQ(report.tiers[0].rejection, 1.0);
  EXPECT_DOUBLE_EQ(report.tiers[0].purity, 1.0);
}

// ---- shared fixtures ------------------------------------------------

constexpr std::int64_t kStamp = 36;
constexpr std::int64_t kCrop = 21;

sim::SnDataset small_dataset(std::int64_t n = 24, std::uint64_t seed = 9) {
  sim::SnDataset::Config cfg;
  cfg.num_samples = n;
  cfg.seed = seed;
  cfg.catalog.count = 150;
  return sim::SnDataset::build(cfg);
}

std::vector<std::int64_t> range_indices(std::int64_t n) {
  std::vector<std::int64_t> idx(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) idx[static_cast<std::size_t>(i)] = i;
  return idx;
}

stream::NightConfig small_night() {
  stream::NightConfig cfg;
  cfg.candidates = 40;
  cfg.pool = 12;
  cfg.field = 8;
  cfg.batch = 16;
  cfg.stamp = kStamp;
  cfg.crop = kCrop;
  cfg.seed = 77;
  return cfg;
}

void set_runtime(int threads, std::int64_t prefetch) {
  RuntimeConfig rc = RuntimeConfig::current();
  rc.threads = threads;
  rc.prefetch = prefetch;
  RuntimeConfig::set_current(rc);
}

struct RuntimeGuard {
  ~RuntimeGuard() { set_runtime(1, 1); }
};

// Seeded, untrained models: cascade behavior must not depend on model
// quality, only on determinism.
core::JointModelConfig joint_config() {
  core::JointModelConfig cfg;
  cfg.cnn.input_size = kStamp;
  cfg.cnn.conv_channels = {4, 6, 8};
  cfg.cnn.fc_hidden = {16, 8};
  cfg.classifier.hidden_units = 12;
  return cfg;
}

stream::CascadeConfig cascade_config(const stream::Tier1Cnn& tier1,
                                     const core::JointModel& joint,
                                     float tier1_threshold) {
  stream::CascadeConfig cfg;
  cfg.stages.push_back(stream::CascadeStage{
      "tier1", stream::compile_tier1_plan(tier1), stream::AlertInput::Tier1,
      tier1_threshold, false});
  cfg.joint = [&joint] { return core::make_session(joint); };
  cfg.joint_batch = 8;
  cfg.max_pending = 64;
  return cfg;
}

std::vector<float> flatten(const stream::AlertBatch& b) {
  std::vector<float> out;
  out.insert(out.end(), b.tier1.data(), b.tier1.data() + b.tier1.size());
  out.insert(out.end(), b.pair.data(), b.pair.data() + b.pair.size());
  out.insert(out.end(), b.meta.data(), b.meta.data() + b.meta.size());
  return out;
}

// ---- NightStream ----------------------------------------------------

TEST(NightStream, CoversEachCandidateOncePerBandWithBoundedGateSpan) {
  const sim::SnDataset data = small_dataset();
  const stream::NightConfig cfg = small_night();
  stream::NightStream night(data, range_indices(data.size()), cfg);

  std::map<std::pair<std::int64_t, std::int64_t>, int> seen;
  std::map<std::int64_t, std::pair<std::int64_t, std::int64_t>> alert_span;
  std::int64_t alerts = 0;
  stream::AlertBatch batch;
  while (night.next(batch)) {
    const std::int64_t n = batch.size();
    ASSERT_EQ(batch.tier1.extent(0), n);
    ASSERT_EQ(batch.tier1.extent(2), kCrop);
    ASSERT_EQ(batch.pair.extent(0), n);
    ASSERT_EQ(batch.pair.extent(2), kStamp);
    for (std::int64_t a = 0; a < n; ++a) {
      const float* m = batch.meta.data() + a * stream::meta::kColumns;
      const auto candidate =
          static_cast<std::int64_t>(m[stream::meta::kCandidate]);
      const auto band = static_cast<std::int64_t>(m[stream::meta::kBand]);
      ASSERT_GE(candidate, 0);
      ASSERT_LT(candidate, cfg.candidates);
      ASSERT_GE(band, 0);
      ASSERT_LT(band, astro::kNumBands);
      ++seen[{candidate, band}];
      const std::int64_t index = alerts + a;
      auto [it, fresh] = alert_span.try_emplace(candidate,
                                                std::make_pair(index, index));
      if (!fresh) it->second.second = index;
      // is_ia implies real; bogus alerts are never SNIa.
      if (m[stream::meta::kIsIa] != 0.0f) {
        EXPECT_NE(m[stream::meta::kReal], 0.0f);
      }
    }
    alerts += n;
  }
  EXPECT_EQ(alerts, night.total_alerts());
  EXPECT_EQ(static_cast<std::int64_t>(seen.size()),
            cfg.candidates * astro::kNumBands);
  for (const auto& [key, count] : seen) EXPECT_EQ(count, 1);
  // Field-blocked schedule: all five alerts of a candidate arrive within
  // one field block of field·bands alerts.
  for (const auto& [candidate, span] : alert_span) {
    EXPECT_LT(span.second - span.first, cfg.field * astro::kNumBands)
        << "candidate " << candidate;
  }
}

TEST(NightStream, BatchesBitwiseInvariantToPrefetchAndThreads) {
  RuntimeGuard guard;
  const sim::SnDataset data = small_dataset();
  const stream::NightConfig cfg = small_night();

  set_runtime(1, 0);
  stream::NightStream reference(data, range_indices(data.size()), cfg);
  std::vector<std::vector<float>> expected;
  stream::AlertBatch batch;
  while (reference.next(batch)) expected.push_back(flatten(batch));
  ASSERT_FALSE(expected.empty());

  for (const int threads : {1, 4}) {
    for (const std::int64_t depth : {std::int64_t{0}, std::int64_t{2}}) {
      set_runtime(threads, depth);
      stream::NightStream night(data, range_indices(data.size()), cfg);
      EXPECT_EQ(night.prefetch_depth(), depth);
      std::size_t k = 0;
      while (night.next(batch)) {
        ASSERT_LT(k, expected.size());
        EXPECT_EQ(flatten(batch), expected[k])
            << "batch " << k << " threads " << threads << " depth " << depth;
        ++k;
      }
      EXPECT_EQ(k, expected.size());
    }
  }
}

TEST(NightStream, ResetReplaysTheSameNight) {
  const sim::SnDataset data = small_dataset();
  stream::NightStream night(data, range_indices(data.size()), small_night());
  stream::AlertBatch first;
  ASSERT_TRUE(night.next(first));
  const std::vector<float> bytes = flatten(first);
  night.reset();
  stream::AlertBatch again;
  ASSERT_TRUE(night.next(again));
  EXPECT_EQ(flatten(again), bytes);
}

// ---- FilterCascade --------------------------------------------------

TEST(FilterCascade, PassAllThresholdCompletesEveryCandidate) {
  const sim::SnDataset data = small_dataset();
  Rng rng(5);
  stream::Tier1Config t1cfg;
  t1cfg.crop = kCrop;
  const stream::Tier1Cnn tier1(t1cfg, rng);
  const core::JointModel joint(joint_config(), rng);

  const stream::NightConfig ncfg = small_night();
  stream::NightStream night(data, range_indices(data.size()), ncfg);
  const stream::FilterCascade cascade =
      stream::run_night(night, cascade_config(tier1, joint, -1e30f));

  const eval::CascadeCounts& counts = cascade.counts();
  ASSERT_EQ(counts.tiers.size(), 2u);
  EXPECT_EQ(counts.tiers[0].in, night.total_alerts());
  EXPECT_EQ(counts.tiers[0].passed, night.total_alerts());
  // Every candidate completed all five bands: the joint tier saw each
  // exactly once, nothing evicted, nothing incomplete.
  EXPECT_EQ(counts.tiers[1].in, ncfg.candidates);
  EXPECT_EQ(counts.evicted, 0);
  EXPECT_EQ(counts.incomplete, 0);
  EXPECT_EQ(counts.end_to_end.in, ncfg.candidates);
  EXPECT_EQ(static_cast<std::int64_t>(cascade.verdicts().size()),
            ncfg.candidates);
  EXPECT_EQ(cascade.pending(), 0);
}

TEST(FilterCascade, RejectAllThresholdStarvesTheGate) {
  const sim::SnDataset data = small_dataset();
  Rng rng(5);
  stream::Tier1Config t1cfg;
  t1cfg.crop = kCrop;
  const stream::Tier1Cnn tier1(t1cfg, rng);
  const core::JointModel joint(joint_config(), rng);

  stream::NightStream night(data, range_indices(data.size()), small_night());
  const stream::FilterCascade cascade =
      stream::run_night(night, cascade_config(tier1, joint, 1e30f));

  const eval::CascadeCounts& counts = cascade.counts();
  EXPECT_EQ(counts.tiers[0].in, night.total_alerts());
  EXPECT_EQ(counts.tiers[0].passed, 0);
  EXPECT_EQ(counts.tiers[1].in, 0);
  EXPECT_TRUE(cascade.verdicts().empty());
  EXPECT_EQ(counts.incomplete, 0);
  // The candidate universe is still fully accounted.
  EXPECT_EQ(counts.end_to_end.in, small_night().candidates);
  EXPECT_EQ(counts.end_to_end.passed, 0);
}

TEST(FilterCascade, AccountingIsConsistentAcrossTiers) {
  const sim::SnDataset data = small_dataset();
  Rng rng(5);
  stream::Tier1Config t1cfg;
  t1cfg.crop = kCrop;
  const stream::Tier1Cnn tier1(t1cfg, rng);
  const core::JointModel joint(joint_config(), rng);

  const stream::NightConfig ncfg = small_night();
  stream::NightStream night(data, range_indices(data.size()), ncfg);
  // Untrained tier at threshold 0: roughly half the alerts pass, so the
  // gate sees a real mix of complete/incomplete candidates.
  const stream::FilterCascade cascade =
      stream::run_night(night, cascade_config(tier1, joint, 0.0f));

  const eval::CascadeCounts& counts = cascade.counts();
  EXPECT_EQ(counts.tiers[0].in, night.total_alerts());
  EXPECT_GE(counts.tiers[0].passed, 0);
  EXPECT_LE(counts.tiers[0].passed, counts.tiers[0].in);
  EXPECT_LE(counts.tiers[0].positives_passed, counts.tiers[0].positives_in);
  // Joint tier consumed complete candidates + incomplete ones left at
  // the gate; together they can't exceed the candidate universe.
  EXPECT_LE(counts.tiers[1].in + counts.incomplete + counts.evicted,
            ncfg.candidates);
  EXPECT_EQ(counts.end_to_end.in, ncfg.candidates);
  EXPECT_EQ(counts.end_to_end.passed, counts.tiers[1].passed);
  EXPECT_EQ(static_cast<std::int64_t>(cascade.verdicts().size()),
            counts.tiers[1].in);
}

TEST(FilterCascade, VerdictsBitwiseInvariantToPrefetchAndThreads) {
  RuntimeGuard guard;
  const sim::SnDataset data = small_dataset();
  Rng rng(5);
  stream::Tier1Config t1cfg;
  t1cfg.crop = kCrop;
  const stream::Tier1Cnn tier1(t1cfg, rng);
  const core::JointModel joint(joint_config(), rng);

  auto run = [&](int threads, std::int64_t depth) {
    set_runtime(threads, depth);
    stream::NightStream night(data, range_indices(data.size()),
                              small_night());
    return stream::run_night(night, cascade_config(tier1, joint, 0.0f));
  };

  const stream::FilterCascade reference = run(1, 0);
  ASSERT_FALSE(reference.verdicts().empty());
  for (const int threads : {1, 4}) {
    for (const std::int64_t depth : {std::int64_t{0}, std::int64_t{2}}) {
      const stream::FilterCascade other = run(threads, depth);
      ASSERT_EQ(other.verdicts().size(), reference.verdicts().size());
      for (std::size_t k = 0; k < reference.verdicts().size(); ++k) {
        const stream::Verdict& a = reference.verdicts()[k];
        const stream::Verdict& b = other.verdicts()[k];
        EXPECT_EQ(a.candidate, b.candidate);
        EXPECT_EQ(std::memcmp(&a.score, &b.score, sizeof(float)), 0)
            << "verdict " << k << " threads " << threads << " depth "
            << depth;
        EXPECT_EQ(a.accepted, b.accepted);
      }
      for (std::size_t t = 0; t < reference.counts().tiers.size(); ++t) {
        EXPECT_EQ(other.counts().tiers[t].in, reference.counts().tiers[t].in);
        EXPECT_EQ(other.counts().tiers[t].passed,
                  reference.counts().tiers[t].passed);
      }
    }
  }
}

TEST(FilterCascade, TinyMaxPendingEvictsInsteadOfGrowing) {
  const sim::SnDataset data = small_dataset();
  Rng rng(5);
  stream::Tier1Config t1cfg;
  t1cfg.crop = kCrop;
  const stream::Tier1Cnn tier1(t1cfg, rng);
  const core::JointModel joint(joint_config(), rng);

  stream::NightConfig ncfg = small_night();
  stream::NightStream night(data, range_indices(data.size()), ncfg);
  stream::CascadeConfig ccfg = cascade_config(tier1, joint, -1e30f);
  ccfg.max_pending = 2;  // far below the ~field candidates in flight
  const stream::FilterCascade cascade = stream::run_night(night, ccfg);

  EXPECT_GT(cascade.counts().evicted, 0);
  // Every candidate enters the gate (pass-all tier) and ends completed,
  // incomplete, or evicted — though one candidate can be evicted more
  // than once, so eviction events only bound the universe from above.
  EXPECT_GE(cascade.counts().evicted + cascade.counts().tiers[1].in +
                cascade.counts().incomplete,
            ncfg.candidates);
}

TEST(FilterCascade, PushAfterFinishThrows) {
  Rng rng(5);
  const core::JointModel joint(joint_config(), rng);
  stream::CascadeConfig cfg;
  cfg.joint = [&joint] { return core::make_session(joint); };
  stream::FilterCascade cascade(cfg);
  cascade.finish();
  stream::AlertBatch batch;
  batch.meta = Tensor({1, stream::meta::kColumns});
  EXPECT_THROW(cascade.push(batch), std::logic_error);
}

// ---- Tier1 ----------------------------------------------------------

TEST(Tier1, Int8SessionMatchesShapeAndRequiresCalibration) {
  Rng rng(11);
  stream::Tier1Config cfg;
  cfg.crop = kCrop;
  const stream::Tier1Cnn cnn(cfg, rng);

  core::SessionOptions bad;
  bad.precision = Precision::Int8;
  EXPECT_THROW(stream::make_tier1_session(cnn, bad), std::invalid_argument);

  Rng data_rng(3);
  Tensor batch({4, 1, kCrop, kCrop});
  for (std::int64_t i = 0; i < batch.size(); ++i) {
    batch[i] = static_cast<float>(data_rng.uniform(-2.0, 2.0));
  }
  infer::InferenceSession fp32 = stream::make_tier1_session(cnn);
  infer::CalibrationTable table;
  Tensor fp32_out;
  fp32.calibrate(batch, fp32_out, table);
  ASSERT_EQ(fp32_out.extent(0), 4);

  core::SessionOptions int8_opts;
  int8_opts.precision = Precision::Int8;
  int8_opts.calibration = &table;
  infer::InferenceSession int8 = stream::make_tier1_session(cnn, int8_opts);
  Tensor int8_out;
  int8.run(batch, int8_out);
  ASSERT_EQ(int8_out.extent(0), 4);
  for (std::int64_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(int8_out[i], fp32_out[i], 0.5f) << "row " << i;
  }
}

// ---- CascadeScorer (serving adapter) --------------------------------

Tensor wire_batch(std::int64_t n, std::int64_t joint_dim,
                  std::int64_t sample_numel, std::uint64_t seed) {
  Rng rng(seed);
  Tensor batch({n, sample_numel});
  for (std::int64_t i = 0; i < batch.size(); ++i) {
    batch[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  // Keep the date slots in a sane feature range.
  for (std::int64_t r = 0; r < n; ++r) {
    for (std::int64_t b = 0; b < astro::kNumBands; ++b) {
      batch[r * sample_numel + joint_dim - astro::kNumBands + b] =
          static_cast<float>(0.1 * static_cast<double>(b));
    }
  }
  return batch;
}

TEST(CascadeScorer, PassAllTierMatchesPlainJointScoring) {
  Rng rng(5);
  stream::Tier1Config t1cfg;
  t1cfg.crop = kCrop;
  const stream::Tier1Cnn tier1(t1cfg, rng);
  const core::JointModel joint(joint_config(), rng);

  stream::CascadeScorerConfig cfg;
  cfg.crop = kCrop;
  cfg.stages.push_back(stream::CascadeStage{
      "tier1", stream::compile_tier1_plan(tier1), stream::AlertInput::Tier1,
      -1e30f, false});
  cfg.joint = [&joint] { return core::make_session(joint); };
  stream::CascadeScorer scorer(cfg);

  const std::int64_t joint_dim = core::JointModel::input_dim(kStamp);
  ASSERT_EQ(scorer.sample_numel(),
            joint_dim + astro::kNumBands * kCrop * kCrop);
  const Tensor batch = wire_batch(3, joint_dim, scorer.sample_numel(), 21);

  Tensor out;
  scorer.run(batch, out);
  ASSERT_EQ(out.extent(0), 3);

  // Reference: score the joint-row prefix of each wire row directly.
  infer::JointSession session = core::make_session(joint);
  Tensor joint_rows({3, joint_dim});
  for (std::int64_t r = 0; r < 3; ++r) {
    std::memcpy(joint_rows.data() + r * joint_dim,
                batch.data() + r * scorer.sample_numel(),
                static_cast<std::size_t>(joint_dim) * sizeof(float));
  }
  Tensor expected;
  session.run(joint_rows, expected);
  for (std::int64_t r = 0; r < 3; ++r) {
    EXPECT_EQ(std::memcmp(&out[r], &expected[r], sizeof(float)), 0)
        << "row " << r;
  }
}

TEST(CascadeScorer, RejectAllTierReturnsRejectLogit) {
  Rng rng(5);
  stream::Tier1Config t1cfg;
  t1cfg.crop = kCrop;
  const stream::Tier1Cnn tier1(t1cfg, rng);
  const core::JointModel joint(joint_config(), rng);

  stream::CascadeScorerConfig cfg;
  cfg.crop = kCrop;
  cfg.stages.push_back(stream::CascadeStage{
      "tier1", stream::compile_tier1_plan(tier1), stream::AlertInput::Tier1,
      1e30f, false});
  cfg.joint = [&joint] { return core::make_session(joint); };
  stream::CascadeScorer scorer(cfg);

  const std::int64_t joint_dim = core::JointModel::input_dim(kStamp);
  const Tensor batch = wire_batch(2, joint_dim, scorer.sample_numel(), 22);
  Tensor out;
  scorer.run(batch, out);
  EXPECT_EQ(out[0], stream::kRejectLogit);
  EXPECT_EQ(out[1], stream::kRejectLogit);
}

TEST(CascadeScorer, SpecRoundTripsThroughServeFactory) {
  Rng rng(5);
  const core::JointModel joint(joint_config(), rng);
  stream::CascadeScorerConfig cfg;
  cfg.crop = kCrop;
  cfg.joint = [&joint] { return core::make_session(joint); };
  const serve::ScorerFactory factory =
      serve::scorer_factory(stream::make_cascade_scorer_spec(cfg));
  const std::unique_ptr<serve::Scorer> scorer = factory();
  EXPECT_EQ(scorer->sample_numel(), core::JointModel::input_dim(kStamp) +
                                        astro::kNumBands * kCrop * kCrop);
  EXPECT_EQ(scorer->output_numel(), 1);
}

// ---- ScorerSpec validation (the redesigned serve surface) -----------

TEST(ScorerSpec, ExactlyOneSourceIsEnforced) {
  serve::ScorerSpec empty;
  EXPECT_THROW(serve::make_scorer(empty), std::invalid_argument);
  EXPECT_THROW(serve::scorer_factory(empty), std::invalid_argument);

  Rng rng(5);
  const core::JointModel joint(joint_config(), rng);
  serve::ScorerSpec both;
  both.joint = [&joint] { return core::make_session(joint); };
  both.custom = [] { return std::unique_ptr<serve::Scorer>(); };
  EXPECT_THROW(serve::make_scorer(both), std::invalid_argument);
}

}  // namespace
}  // namespace sne
