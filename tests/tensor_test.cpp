// tensor_test.cpp — unit tests for the tensor substrate: shapes,
// arithmetic, reductions, RNG statistics, and serialization round-trips.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <sstream>

#include "tensor/qtensor.h"
#include "tensor/rng.h"
#include "tensor/serialize.h"
#include "tensor/tensor.h"

namespace sne {
namespace {

TEST(TensorShape, ZeroInitialized) {
  Tensor t({2, 3});
  EXPECT_EQ(t.rank(), 2);
  EXPECT_EQ(t.size(), 6);
  EXPECT_EQ(t.extent(0), 2);
  EXPECT_EQ(t.extent(1), 3);
  for (std::int64_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(TensorShape, FillConstructor) {
  Tensor t({4}, 2.5f);
  for (std::int64_t i = 0; i < 4; ++i) EXPECT_EQ(t[i], 2.5f);
}

TEST(TensorShape, RejectsNonPositiveExtent) {
  EXPECT_THROW(Tensor({0, 3}), std::invalid_argument);
  EXPECT_THROW(Tensor({2, -1}), std::invalid_argument);
}

TEST(TensorShape, RejectsDataSizeMismatch) {
  EXPECT_THROW(Tensor({2, 2}, std::vector<float>{1, 2, 3}),
               std::invalid_argument);
}

TEST(TensorShape, MultiAxisAccessRowMajor) {
  Tensor t({2, 3}, {0, 1, 2, 3, 4, 5});
  EXPECT_EQ(t.at(0, 0), 0.0f);
  EXPECT_EQ(t.at(0, 2), 2.0f);
  EXPECT_EQ(t.at(1, 0), 3.0f);
  EXPECT_EQ(t.at(1, 2), 5.0f);
}

TEST(TensorShape, AccessBoundsChecked) {
  Tensor t({2, 2});
  EXPECT_THROW(t.at(2, 0), std::out_of_range);
  EXPECT_THROW(t.at(0, -1), std::out_of_range);
  EXPECT_THROW(t.at(0), std::invalid_argument);  // rank mismatch
}

TEST(TensorShape, ReshapeKeepsData) {
  Tensor t({2, 3}, {0, 1, 2, 3, 4, 5});
  const Tensor r = t.reshaped({3, 2});
  EXPECT_EQ(r.at(2, 1), 5.0f);
  EXPECT_EQ(r.size(), 6);
}

TEST(TensorShape, ReshapeInfersExtent) {
  Tensor t({2, 6});
  const Tensor r = t.reshaped({4, -1});
  EXPECT_EQ(r.extent(1), 3);
  EXPECT_THROW(t.reshaped({5, -1}), std::invalid_argument);
  EXPECT_THROW(t.reshaped({-1, -1}), std::invalid_argument);
}

TEST(TensorArithmetic, ElementwiseOps) {
  Tensor a({3}, {1, 2, 3});
  Tensor b({3}, {10, 20, 30});
  EXPECT_TRUE((a + b).equals(Tensor({3}, {11, 22, 33})));
  EXPECT_TRUE((b - a).equals(Tensor({3}, {9, 18, 27})));
  EXPECT_TRUE((a * b).equals(Tensor({3}, {10, 40, 90})));
  EXPECT_TRUE((a * 2.0f).equals(Tensor({3}, {2, 4, 6})));
}

TEST(TensorArithmetic, ShapeMismatchThrows) {
  Tensor a({3});
  Tensor b({4});
  EXPECT_THROW(a += b, std::invalid_argument);
}

TEST(TensorArithmetic, Axpy) {
  Tensor a({3}, {1, 1, 1});
  const Tensor b({3}, {1, 2, 3});
  a.axpy(2.0f, b);
  EXPECT_TRUE(a.equals(Tensor({3}, {3, 5, 7})));
}

TEST(TensorReductions, SumMeanMinMaxArgmax) {
  Tensor t({4}, {3, -1, 7, 2});
  EXPECT_FLOAT_EQ(t.sum(), 11.0f);
  EXPECT_FLOAT_EQ(t.mean(), 2.75f);
  EXPECT_FLOAT_EQ(t.min(), -1.0f);
  EXPECT_FLOAT_EQ(t.max(), 7.0f);
  EXPECT_EQ(t.argmax(), 2);
  EXPECT_NEAR(t.l2_norm(), std::sqrt(9.0f + 1 + 49 + 4), 1e-5);
}

TEST(TensorReductions, AllClose) {
  Tensor a({2}, {1.0f, 2.0f});
  Tensor b({2}, {1.0f + 5e-6f, 2.0f});
  EXPECT_TRUE(a.allclose(b, 1e-5f));
  EXPECT_FALSE(a.allclose(b, 1e-7f));
}

// ---- RNG ----

TEST(Rng, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  EXPECT_NE(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(2.0, 5.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIndexCoversRange) {
  Rng rng(7);
  std::vector<int> seen(10, 0);
  for (int i = 0; i < 5000; ++i) {
    ++seen[static_cast<std::size_t>(rng.uniform_index(10))];
  }
  for (const int count : seen) EXPECT_GT(count, 350);  // ~500 expected
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  double s = 0.0;
  double s2 = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(3.0, 2.0);
    s += x;
    s2 += x * x;
  }
  const double mean = s / n;
  const double var = s2 / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(Rng, GammaMoments) {
  Rng rng(13);
  const double k = 2.6;
  const double theta = 0.28;
  double s = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) s += rng.gamma(k, theta);
  EXPECT_NEAR(s / n, k * theta, 0.02);
}

TEST(Rng, PoissonMeanSmallAndLarge) {
  Rng rng(17);
  for (const double mean : {3.0, 50.0, 1000.0}) {
    double s = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
      s += static_cast<double>(rng.poisson(mean));
    }
    EXPECT_NEAR(s / n, mean, mean * 0.05 + 0.1);
  }
}

TEST(Rng, TruncatedNormalRespectsBounds) {
  Rng rng(19);
  for (int i = 0; i < 2000; ++i) {
    const double x = rng.truncated_normal(0.0, 1.0, -0.5, 0.5);
    EXPECT_GE(x, -0.5);
    EXPECT_LE(x, 0.5);
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(23);
  std::vector<std::size_t> v{0, 1, 2, 3, 4, 5, 6, 7};
  rng.shuffle(v);
  std::vector<std::size_t> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size(); ++i) EXPECT_EQ(sorted[i], i);
}

TEST(Rng, ForkDecorrelates) {
  Rng parent(31);
  Rng child = parent.fork();
  // Parent and child streams should not coincide.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.next_u64() == child.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

// ---- serialization ----

TEST(Serialize, TensorRoundTrip) {
  Rng rng(5);
  const Tensor t = Tensor::randn({3, 4, 5}, rng);
  std::stringstream ss;
  write_tensor(ss, t);
  const Tensor u = read_tensor(ss);
  EXPECT_TRUE(t.equals(u));
}

TEST(Serialize, TensorMapRoundTrip) {
  Rng rng(6);
  TensorMap map;
  map.emplace_back("alpha", Tensor::randn({2, 2}, rng));
  map.emplace_back("beta", Tensor::randn({7}, rng));
  std::stringstream ss;
  write_tensor_map(ss, map);
  const TensorMap out = read_tensor_map(ss);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].first, "alpha");
  EXPECT_TRUE(out[0].second.equals(map[0].second));
  EXPECT_EQ(out[1].first, "beta");
  EXPECT_TRUE(out[1].second.equals(map[1].second));
}

TEST(Serialize, RejectsBadMagic) {
  std::stringstream ss;
  ss << "GARBAGE";
  EXPECT_THROW(read_tensor_map(ss), std::runtime_error);
}

TEST(Serialize, RejectsTruncatedStream) {
  Rng rng(8);
  const Tensor t = Tensor::randn({8, 8}, rng);
  std::stringstream ss;
  write_tensor(ss, t);
  std::string blob = ss.str();
  blob.resize(blob.size() / 2);
  std::stringstream truncated(blob);
  EXPECT_THROW(read_tensor(truncated), std::runtime_error);
}

// ---- version-2 (dtype-tagged) container ----

TEST(Serialize, PureF32MapStaysVersion1ByteIdentical) {
  Rng rng(9);
  TensorMap map;
  map.emplace_back("w", Tensor::randn({3, 4}, rng));
  map.emplace_back("b", Tensor::randn({3}, rng));

  // The mixed-precision writer with no quantized records must produce the
  // exact bytes of the legacy writer: pre-quantization checkpoints and
  // readers stay valid forever.
  std::stringstream legacy, mixed;
  write_tensor_map(legacy, map);
  write_tensor_map(mixed, map, QTensorMap{});
  EXPECT_EQ(legacy.str(), mixed.str());

  // Version byte of a pure-f32 container is 1 (magic "SNET" + u64 LE).
  ASSERT_GE(legacy.str().size(), 12u);
  EXPECT_EQ(legacy.str()[4], 1);

  // And a v1 blob loads through BOTH readers, the full one leaving
  // `quantized` empty.
  std::stringstream in(legacy.str());
  const TensorMap via_legacy = read_tensor_map(in);
  ASSERT_EQ(via_legacy.size(), 2u);
  EXPECT_TRUE(via_legacy[0].second.equals(map[0].second));

  std::stringstream in2(legacy.str());
  TensorMap tensors;
  QTensorMap quantized;
  read_tensor_map(in2, tensors, quantized);
  ASSERT_EQ(tensors.size(), 2u);
  EXPECT_TRUE(tensors[1].second.equals(map[1].second));
  EXPECT_TRUE(quantized.empty());
}

TEST(Serialize, MixedMapRoundTripsThroughVersion2) {
  Rng rng(10);
  TensorMap map;
  map.emplace_back("gamma", Tensor::randn({5}, rng));
  QTensorMap qmap;
  qmap.emplace_back("0.qweight",
                    quantize_per_channel(Tensor::randn({4, 6}, rng)));
  qmap.emplace_back("2.qweight",
                    quantize_per_channel(Tensor::randn({2, 3, 3}, rng)));

  std::stringstream ss;
  write_tensor_map(ss, map, qmap);
  EXPECT_EQ(ss.str()[4], 2);  // dtype-tagged container

  TensorMap tensors;
  QTensorMap quantized;
  std::stringstream in(ss.str());
  read_tensor_map(in, tensors, quantized);
  ASSERT_EQ(tensors.size(), 1u);
  EXPECT_EQ(tensors[0].first, "gamma");
  EXPECT_TRUE(tensors[0].second.equals(map[0].second));
  ASSERT_EQ(quantized.size(), 2u);
  for (std::size_t i = 0; i < quantized.size(); ++i) {
    const QTensor& got = quantized[i].second;
    const QTensor& ref = qmap[i].second;
    EXPECT_EQ(quantized[i].first, qmap[i].first);
    ASSERT_EQ(got.shape, ref.shape);
    EXPECT_TRUE(got.scales.equals(ref.scales));
    ASSERT_EQ(got.data.size(), ref.data.size());
    EXPECT_EQ(std::memcmp(got.data.data(), ref.data.data(), ref.data.size()),
              0);
  }
}

TEST(Serialize, LegacyReaderRejectsQuantizedRecords) {
  Rng rng(11);
  QTensorMap qmap;
  qmap.emplace_back("q", quantize_per_channel(Tensor::randn({2, 2}, rng)));
  std::stringstream ss;
  write_tensor_map(ss, TensorMap{}, qmap);
  EXPECT_THROW(read_tensor_map(ss), std::runtime_error);
}

TEST(Serialize, RejectsUnknownDtypeAndTruncatedV2) {
  Rng rng(12);
  TensorMap map;
  map.emplace_back("w", Tensor::randn({2, 2}, rng));
  QTensorMap qmap;
  qmap.emplace_back("q", quantize_per_channel(Tensor::randn({3, 8}, rng)));
  std::stringstream ss;
  write_tensor_map(ss, map, qmap);
  std::string blob = ss.str();

  // The first record's dtype tag sits right after the header (magic 4 +
  // version 8 + count 8) and its name (len 8 + 1 byte "w"). Stamp an
  // unknown tag there.
  std::string bad = blob;
  bad[4 + 8 + 8 + 8 + 1] = 99;
  std::stringstream bad_in(bad);
  TensorMap tensors;
  QTensorMap quantized;
  EXPECT_THROW(read_tensor_map(bad_in, tensors, quantized),
               std::runtime_error);

  // Cutting the stream inside the int8 payload must throw, not return a
  // short tensor.
  std::string cut = blob;
  cut.resize(cut.size() - 5);
  std::stringstream cut_in(cut);
  EXPECT_THROW(read_tensor_map(cut_in, tensors, quantized),
               std::runtime_error);
}

}  // namespace
}  // namespace sne
