// tensor_view_test.cpp — the zero-copy view layer: aliasing (subview
// writes land in the parent buffer), lifetime and bounds guards, the
// contiguity contract of data(), strided gather/scatter round-trips, and
// the allocation-free construction pin the batch path and the inference
// arena rely on. Runs under the asan preset (asan-data) to make the
// aliasing and lifetime claims real.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "tensor/tensor.h"
#include "tensor/view.h"

// Allocation counter for the view-construction pin; armed only inside
// the measured window so gtest bookkeeping stays invisible.
namespace {
std::atomic<bool> g_count_allocs{false};
std::atomic<std::int64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace sne {
namespace {

Tensor iota_tensor(Shape shape) {
  Tensor t(std::move(shape));
  std::iota(t.data(), t.data() + t.size(), 0.0f);
  return t;
}

TEST(TensorView, WholeTensorViewIsContiguousAndAliases) {
  Tensor t = iota_tensor({2, 3});
  ConstTensorView v = t;  // implicit
  EXPECT_EQ(v.rank(), 2);
  EXPECT_EQ(v.extent(0), 2);
  EXPECT_EQ(v.extent(1), 3);
  EXPECT_EQ(v.size(), 6);
  EXPECT_TRUE(v.is_contiguous());
  EXPECT_EQ(v.data(), t.data());  // aliasing, not a copy

  // Writes through a mutable view land in the tensor.
  t.view()[4] = 99.0f;
  EXPECT_FLOAT_EQ(t[4], 99.0f);
  EXPECT_FLOAT_EQ(v[4], 99.0f);
}

TEST(TensorView, LeadingAxisSliceIsContiguousRowWindow) {
  Tensor t = iota_tensor({4, 3});
  ConstTensorView row = t.view().slice(0, 2, 3);
  EXPECT_EQ(row.extent(0), 1);
  EXPECT_EQ(row.extent(1), 3);
  EXPECT_TRUE(row.is_contiguous());  // extent-1 axis is layout-neutral
  EXPECT_EQ(row.data(), t.data() + 2 * 3);
  EXPECT_FLOAT_EQ(row.at(0, 0), 6.0f);
  EXPECT_FLOAT_EQ(row.at(0, 2), 8.0f);
}

TEST(TensorView, SubviewWritesLandInParent) {
  Tensor t({4, 3}, 0.0f);
  t.slice(0, 1, 3).fill(7.0f);
  for (std::int64_t i = 0; i < t.size(); ++i) {
    EXPECT_FLOAT_EQ(t[i], (i >= 3 && i < 9) ? 7.0f : 0.0f) << "i=" << i;
  }

  // Strided (non-leading-axis) subview: column 1 of every row.
  t.zero();
  t.slice(1, 1, 2).fill(5.0f);
  for (std::int64_t r = 0; r < 4; ++r) {
    EXPECT_FLOAT_EQ(t.at(r, 0), 0.0f);
    EXPECT_FLOAT_EQ(t.at(r, 1), 5.0f);
    EXPECT_FLOAT_EQ(t.at(r, 2), 0.0f);
  }
}

TEST(TensorView, NonLeadingSliceIsStridedAndDataThrows) {
  Tensor t = iota_tensor({3, 4});
  ConstTensorView col = t.view().slice(1, 1, 3);  // [3, 2], stride {4, 1}
  EXPECT_FALSE(col.is_contiguous());
  EXPECT_THROW(col.data(), std::logic_error);
  EXPECT_THROW(col.reshaped({6}), std::logic_error);
  // at() walks the strides correctly.
  EXPECT_FLOAT_EQ(col.at(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(col.at(2, 1), 10.0f);
}

TEST(TensorView, OutOfRangeSliceAndAccessThrow) {
  Tensor t = iota_tensor({3, 4});
  EXPECT_THROW(t.view().slice(2, 0, 1), std::out_of_range);   // bad axis
  EXPECT_THROW(t.view().slice(0, 0, 4), std::out_of_range);   // end too far
  EXPECT_THROW(t.view().slice(0, 2, 2), std::out_of_range);   // empty range
  EXPECT_THROW(t.view().slice(0, -1, 2), std::out_of_range);  // negative
  ConstTensorView v = t;
  EXPECT_THROW(v.at(3, 0), std::out_of_range);
  EXPECT_THROW(v.at(0, 4), std::out_of_range);
  EXPECT_THROW(v.at(0), std::invalid_argument);  // rank mismatch
  EXPECT_THROW(v.extent(2), std::out_of_range);
}

TEST(TensorView, StridedCopyRoundTrip) {
  Tensor t = iota_tensor({3, 5});
  ConstTensorView cols = t.view().slice(1, 1, 4);  // strided [3, 3]

  // Gather into a dense tensor...
  Tensor dense;
  cols.copy_to(dense);
  ASSERT_EQ(dense.shape(), (Shape{3, 3}));
  for (std::int64_t r = 0; r < 3; ++r) {
    for (std::int64_t c = 0; c < 3; ++c) {
      EXPECT_FLOAT_EQ(dense.at(r, c), t.at(r, c + 1));
    }
  }

  // ...mutate, scatter back through the strided view, and check the
  // untouched columns survived.
  dense.fill(-1.0f);
  t.slice(1, 1, 4).copy_from(dense);
  for (std::int64_t r = 0; r < 3; ++r) {
    EXPECT_FLOAT_EQ(t.at(r, 0), static_cast<float>(r * 5));
    for (std::int64_t c = 1; c < 4; ++c) EXPECT_FLOAT_EQ(t.at(r, c), -1.0f);
    EXPECT_FLOAT_EQ(t.at(r, 4), static_cast<float>(r * 5 + 4));
  }
}

TEST(TensorView, CopyFromRequiresExactShape) {
  Tensor dst({2, 3});
  Tensor src({3, 2});
  EXPECT_THROW(dst.view().copy_from(src), std::invalid_argument);
  EXPECT_THROW(dst.view().copy_from(src.view().reshaped({6})),
               std::invalid_argument);
  // Matching shape goes through.
  dst.view().copy_from(src.view().reshaped({2, 3}));
}

TEST(TensorView, ReshapeIsViewReinterpretation) {
  Tensor t = iota_tensor({2, 2, 3});
  ConstTensorView flat = t.view().reshaped({2, -1});
  EXPECT_EQ(flat.extent(0), 2);
  EXPECT_EQ(flat.extent(1), 6);
  EXPECT_EQ(flat.data(), t.data());  // same storage, new coordinates
  EXPECT_THROW(t.view().reshaped({5, -1}), std::invalid_argument);
  EXPECT_THROW(t.view().reshaped({-1, -1}), std::invalid_argument);
}

TEST(TensorView, BatchRowStagingPattern) {
  // The get_batch stacking pattern: each sample lands in its batch row
  // through slice(0, k, k+1).reshaped(sample shape).copy_from(sample).
  Tensor batch({3, 2, 2});
  for (std::int64_t k = 0; k < 3; ++k) {
    Tensor sample({2, 2}, static_cast<float>(k + 1));
    batch.slice(0, k, k + 1).reshaped(sample.shape()).copy_from(sample);
  }
  for (std::int64_t k = 0; k < 3; ++k) {
    for (std::int64_t i = 0; i < 4; ++i) {
      EXPECT_FLOAT_EQ(batch[k * 4 + i], static_cast<float>(k + 1));
    }
  }
}

TEST(TensorView, ConstructionSliceAndReshapeAreAllocationFree) {
  // The inference arena and snapshot batch path mint views per step;
  // view construction touching the allocator would break their
  // steady-state zero-allocation pins.
  Tensor t = iota_tensor({4, 2, 3, 3});
  g_alloc_count.store(0);
  g_count_allocs.store(true);
  ConstTensorView v = t;
  ConstTensorView rows = v.slice(0, 1, 3);
  ConstTensorView flat = rows.reshaped({2, -1});
  TensorView w = t.view();
  TensorView wrow = w.slice(0, 0, 1);
  const float first = flat[0] + wrow[0] + v[0];
  g_count_allocs.store(false);
  EXPECT_EQ(g_alloc_count.load(), 0);
  EXPECT_FLOAT_EQ(first, 2.0f * t[0] + t[2 * 3 * 3]);
}

TEST(TensorView, RankLimitIsEnforced) {
  const float buf[1] = {0.0f};
  const std::vector<std::int64_t> shape(7, 1);  // kMaxRank is 6
  EXPECT_THROW(ConstTensorView(buf, ConstTensorView::Extents(shape)),
               std::invalid_argument);
}

}  // namespace
}  // namespace sne
