// thread_pool_test.cpp — the parallel_for contract (coverage, exception
// propagation, nesting) and the determinism guarantee: every threaded hot
// path, up to full band-CNN training, is bitwise identical for any thread
// count. Carries the `threaded` ctest label so the suite can run under
// -DSNE_SANITIZE=thread (tier 2).
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "core/band_cnn.h"
#include "nn/nn.h"
#include "sim/dataset_builder.h"
#include "tensor/gemm.h"
#include "tensor/thread_pool.h"

namespace sne {
namespace {

// Restores a 1-wide pool when a test exits, however it exits.
struct PoolWidthGuard {
  ~PoolWidthGuard() { set_num_threads(1); }
};

TEST(ParallelFor, EmptyRangeNeverInvokes) {
  PoolWidthGuard guard;
  set_num_threads(4);
  std::atomic<int> calls{0};
  parallel_for(0, 0, [&](std::int64_t) { ++calls; });
  parallel_for(5, 5, [&](std::int64_t) { ++calls; });
  parallel_for(7, 3, [&](std::int64_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelFor, RangeSmallerThanThreadCount) {
  PoolWidthGuard guard;
  set_num_threads(4);
  std::vector<std::atomic<int>> hits(2);
  parallel_for(0, 2, [&](std::int64_t i) {
    ++hits[static_cast<std::size_t>(i)];
  });
  EXPECT_EQ(hits[0].load(), 1);
  EXPECT_EQ(hits[1].load(), 1);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  PoolWidthGuard guard;
  set_num_threads(4);
  constexpr std::int64_t kCount = 10000;
  std::vector<std::atomic<int>> hits(kCount);
  parallel_for(3, 3 + kCount, [&](std::int64_t i) {
    ++hits[static_cast<std::size_t>(i - 3)];
  });
  for (std::int64_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, PropagatesExceptionsAndStaysUsable) {
  PoolWidthGuard guard;
  set_num_threads(4);
  EXPECT_THROW(parallel_for(0, 100,
                            [&](std::int64_t i) {
                              if (i == 37) {
                                throw std::runtime_error("boom");
                              }
                            }),
               std::runtime_error);
  // Serial fast path propagates too.
  set_num_threads(1);
  EXPECT_THROW(parallel_for(0, 3,
                            [&](std::int64_t) {
                              throw std::runtime_error("boom");
                            }),
               std::runtime_error);
  // The pool survives a throwing job.
  set_num_threads(4);
  std::atomic<int> calls{0};
  parallel_for(0, 64, [&](std::int64_t) { ++calls; });
  EXPECT_EQ(calls.load(), 64);
}

TEST(ParallelFor, NestedRegionsRunInline) {
  PoolWidthGuard guard;
  set_num_threads(4);
  std::atomic<int> calls{0};
  parallel_for(0, 4, [&](std::int64_t) {
    parallel_for(0, 8, [&](std::int64_t) { ++calls; });
  });
  EXPECT_EQ(calls.load(), 32);
}

TEST(ThreadPool, SetNumThreadsAndDefaultRestore) {
  PoolWidthGuard guard;
  set_num_threads(4);
  EXPECT_EQ(num_threads(), 4);
  set_num_threads(0);  // back to SNE_NUM_THREADS / hardware default
  EXPECT_GE(num_threads(), 1);
}

TEST(ThreadDeterminism, SgemmBitwiseIdenticalAcrossThreadCounts) {
  PoolWidthGuard guard;
  Rng rng(11);
  const std::int64_t m = 200, n = 190, k = 170;
  const Tensor a = Tensor::randn({m, k}, rng);
  const Tensor at = Tensor::randn({k, m}, rng);
  const Tensor b = Tensor::randn({k, n}, rng);

  set_num_threads(1);
  Tensor c1({m, n});
  Tensor c1t({m, n});
  sgemm(m, n, k, 1.3f, a.data(), b.data(), 0.0f, c1.data());
  sgemm_at(m, n, k, 0.7f, at.data(), b.data(), 0.0f, c1t.data());

  set_num_threads(4);
  Tensor c4({m, n});
  Tensor c4t({m, n});
  sgemm(m, n, k, 1.3f, a.data(), b.data(), 0.0f, c4.data());
  sgemm_at(m, n, k, 0.7f, at.data(), b.data(), 0.0f, c4t.data());

  EXPECT_EQ(std::memcmp(c1.data(), c4.data(),
                        static_cast<std::size_t>(c1.size()) * sizeof(float)),
            0);
  EXPECT_EQ(std::memcmp(c1t.data(), c4t.data(),
                        static_cast<std::size_t>(c1t.size()) * sizeof(float)),
            0);
}

TEST(ThreadDeterminism, BatchedRenderMatchesPerSampleCalls) {
  PoolWidthGuard guard;
  sim::SnDataset::Config cfg;
  cfg.num_samples = 8;
  cfg.catalog.count = 50;
  const sim::SnDataset data = sim::SnDataset::build(cfg);

  std::vector<std::int64_t> samples = {6, 0, 3, 7, 1};
  set_num_threads(4);
  const auto refs = data.matched_reference_images(samples, astro::Band::i, 1);
  const auto diffs = data.difference_images(samples, astro::Band::i, 1);

  set_num_threads(1);
  ASSERT_EQ(refs.size(), samples.size());
  ASSERT_EQ(diffs.size(), samples.size());
  for (std::size_t k = 0; k < samples.size(); ++k) {
    const Tensor ref =
        data.matched_reference_image(samples[k], astro::Band::i, 1);
    const Tensor diff = data.difference_image(samples[k], astro::Band::i, 1);
    ASSERT_EQ(refs[k].shape(), ref.shape());
    EXPECT_EQ(std::memcmp(refs[k].data(), ref.data(),
                          static_cast<std::size_t>(ref.size()) *
                              sizeof(float)),
              0)
        << "matched reference of sample " << samples[k];
    EXPECT_EQ(std::memcmp(diffs[k].data(), diff.data(),
                          static_cast<std::size_t>(diff.size()) *
                              sizeof(float)),
              0)
        << "difference of sample " << samples[k];
  }
}

// Trains the paper's band CNN for 2 epochs and returns per-epoch losses
// plus the final parameters. Everything is seeded, so two runs may differ
// only through the thread count.
struct TrainResult {
  std::vector<float> losses;
  std::vector<float> params;
};

TrainResult train_band_cnn(int threads) {
  set_num_threads(threads);

  core::BandCnnConfig cfg;
  cfg.input_size = 36;
  Rng model_rng(7);
  core::BandCnn cnn(cfg, model_rng);

  Rng data_rng(13);
  std::vector<nn::Sample> samples;
  for (int i = 0; i < 16; ++i) {
    nn::Sample s;
    s.x = Tensor::randn({2, 36, 36}, data_rng);
    s.y = Tensor({1}, 25.0f + static_cast<float>(data_rng.normal(0.0, 1.0)));
    samples.push_back(std::move(s));
  }
  nn::VectorDataset data(std::move(samples));

  nn::Adam opt(cnn.params(), 1e-3f);
  nn::Trainer trainer(cnn, opt, nn::mse_loss);
  nn::TrainConfig tc;
  tc.epochs = 2;
  tc.batch_size = 8;
  tc.grad_clip = 5.0f;
  const auto history = trainer.fit(data, nullptr, tc);

  TrainResult result;
  for (const nn::EpochStats& e : history) result.losses.push_back(e.train_loss);
  for (nn::Param* p : cnn.params()) {
    for (std::int64_t i = 0; i < p->value.size(); ++i) {
      result.params.push_back(p->value[i]);
    }
  }
  for (nn::Param* p : cnn.buffers()) {
    for (std::int64_t i = 0; i < p->value.size(); ++i) {
      result.params.push_back(p->value[i]);
    }
  }
  return result;
}

TEST(ThreadDeterminism, BandCnnTrainingIdenticalAcrossThreadCounts) {
  PoolWidthGuard guard;
  const TrainResult serial = train_band_cnn(1);
  const TrainResult threaded = train_band_cnn(4);

  ASSERT_EQ(serial.losses.size(), threaded.losses.size());
  for (std::size_t e = 0; e < serial.losses.size(); ++e) {
    EXPECT_EQ(serial.losses[e], threaded.losses[e]) << "epoch " << e;
  }
  ASSERT_EQ(serial.params.size(), threaded.params.size());
  for (std::size_t i = 0; i < serial.params.size(); ++i) {
    ASSERT_EQ(serial.params[i], threaded.params[i]) << "param element " << i;
  }
}

}  // namespace
}  // namespace sne
