// sne_cli — command-line front end for the library: generate synthetic
// survey datasets, train the single-epoch classification pipeline, score
// candidates, and inspect artifacts, without writing any C++.
//
//   sne generate --samples 2000 --seed 42 --out season.snds
//   sne train    --dataset season.snds --out model.snet [--joint-epochs 3]
//   sne score    --dataset season.snds --model model.snet [--top 20]
//   sne info     --dataset season.snds
//   sne info     --model model.snet
//   sne snapshot --dataset season.snds --out flux.snap [--kind flux|joint]
//   sne snapshot --info flux.snap
//   sne stream   --dataset season.snds --model model.snet [--candidates 256]
//   sne serve    --model model.snet --socket /tmp/sne.sock [--port 7070]
#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include <csignal>
#include <unistd.h>

#include "core/inference.h"
#include "core/sne_pipeline.h"
#include "data/snapshot.h"
#include "eval/parity.h"
#include "eval/roc.h"
#include "eval/tables.h"
#include "obs/obs.h"
#include "serve/server.h"
#include "sim/dataset_io.h"
#include "stream/cascade.h"
#include "stream/cascade_scorer.h"
#include "stream/night.h"
#include "stream/tier1.h"
#include "tensor/env.h"
#include "tensor/runtime.h"

using namespace sne;

namespace {

struct Args {
  std::string command;
  std::map<std::string, std::string> options;

  bool has(const std::string& key) const { return options.count(key) > 0; }
  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
  // Numeric flag values go through the strict env-style parser: trailing
  // junk and out-of-range values are hard errors naming the flag, never
  // a silent partial parse (std::stoll would happily read "--top 20x" as
  // 20 and "--seed 9e99" would throw a bare out_of_range with no
  // context).
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const {
    const auto it = options.find(key);
    if (it == options.end()) return fallback;
    const auto parsed = env::parse_int64(it->second);
    if (!parsed) {
      throw std::runtime_error("option --" + key +
                               " needs an integer, got \"" + it->second +
                               "\"");
    }
    return *parsed;
  }
  double get_double(const std::string& key, double fallback) const {
    const auto it = options.find(key);
    if (it == options.end()) return fallback;
    const auto parsed = env::parse_float64(it->second);
    if (!parsed) {
      throw std::runtime_error("option --" + key + " needs a number, got \"" +
                               it->second + "\"");
    }
    return *parsed;
  }
  std::string require(const std::string& key) const {
    const auto it = options.find(key);
    if (it == options.end()) {
      throw std::runtime_error("missing required option --" + key);
    }
    return it->second;
  }
};

// Options that are flags: present or absent, no value token.
bool is_flag(const std::string& name) {
  return name == "timing" || name == "progress";
}

Args parse_args(int argc, char** argv) {
  Args args;
  if (argc < 2) throw std::runtime_error("no command given");
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) != 0) {
      throw std::runtime_error("unexpected argument: " + token);
    }
    const std::string name = token.substr(2);
    if (is_flag(name)) {
      args.options[name] = "1";
      continue;
    }
    if (i + 1 >= argc) {
      throw std::runtime_error("option " + token + " needs a value");
    }
    args.options[name] = argv[++i];
  }
  return args;
}

// Global run-time knobs shared by every command: --threads/--prefetch
// feed RuntimeConfig (same defaults and SNE_* env overrides as the
// library), --trace/--timing turn telemetry capture on. Returns true if
// anything should be reported after the command finishes.
bool apply_runtime_options(const Args& args) {
  RuntimeConfig rc = RuntimeConfig::current();
  rc.threads = static_cast<int>(args.get_int("threads", rc.threads));
  rc.prefetch = args.get_int("prefetch", rc.prefetch);
  if (args.has("precision")) {
    const std::string p = args.get("precision", "");
    if (p == "fp32") {
      rc.precision = Precision::Fp32;
    } else if (p == "int8") {
      rc.precision = Precision::Int8;
    } else {
      throw std::runtime_error("--precision must be fp32 or int8, got " + p);
    }
  }
  if (args.has("trace")) {
    rc.trace = true;
    rc.trace_path = args.get("trace", "");
  }
  if (args.has("timing")) rc.trace = true;
  RuntimeConfig::set_current(rc);
  return rc.trace;
}

// After a traced command: chrome trace to --trace's path, summary table
// to stdout when --timing was given.
void report_telemetry(const Args& args) {
  const std::string path = args.get("trace", "");
  if (!path.empty()) {
    if (obs::write_chrome_trace(path)) {
      std::printf("wrote trace %s (open in chrome://tracing or "
                  "ui.perfetto.dev)\n",
                  path.c_str());
    } else {
      std::fprintf(stderr, "error: could not write trace %s\n", path.c_str());
    }
  }
  if (args.has("timing")) {
    std::printf("%s", obs::summary_table().c_str());
  }
}

int cmd_generate(const Args& args) {
  sim::SnDataset::Config config;
  config.num_samples = args.get_int("samples", 1000);
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 20171130));
  config.p_ia = args.get_double("p-ia", 0.5);
  config.catalog.count =
      std::max<std::int64_t>(1000, config.num_samples);
  const std::string out = args.require("out");

  std::printf("generating %lld samples (seed %llu)...\n",
              static_cast<long long>(config.num_samples),
              static_cast<unsigned long long>(config.seed));
  const sim::SnDataset data = sim::SnDataset::build(config);
  sim::save_dataset(out, data);
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

int cmd_train(const Args& args) {
  const sim::SnDataset data = sim::load_dataset(args.require("dataset"));
  const std::string out = args.require("out");

  core::SnePipelineConfig config;
  config.stamp_size = args.get_int("stamp", 44);
  config.hidden_units = args.get_int("units", 100);
  config.flux_epochs = args.get_int("flux-epochs", 3);
  config.flux_pairs = args.get_int("flux-pairs", 2000);
  config.classifier_epochs = args.get_int("classifier-epochs", 30);
  config.joint_epochs = args.get_int("joint-epochs", 2);
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  if (args.has("progress")) {
    config.progress = [](const char* stage, const nn::EpochStats& s) {
      std::printf("  [%s] epoch %3lld  train_loss %.5f  val_loss %.5f\n",
                  stage, static_cast<long long>(s.epoch), s.train_loss,
                  s.val_loss);
      std::fflush(stdout);
    };
  }

  // 90/10 train/val split over the dataset.
  std::vector<std::int64_t> all(static_cast<std::size_t>(data.size()));
  std::iota(all.begin(), all.end(), 0);
  const auto n_train = static_cast<std::size_t>(data.size() * 9 / 10);
  std::vector<std::int64_t> train_idx(all.begin(),
                                      all.begin() + static_cast<std::ptrdiff_t>(n_train));
  std::vector<std::int64_t> val_idx(all.begin() + static_cast<std::ptrdiff_t>(n_train),
                                    all.end());

  std::printf("training pipeline on %zu samples (stamp %lld, %lld units)\n",
              train_idx.size(), static_cast<long long>(config.stamp_size),
              static_cast<long long>(config.hidden_units));
  core::SnePipeline pipeline(config);
  const core::SnePipelineReport report =
      pipeline.train(data, train_idx, val_idx);

  if (!report.joint_history.empty()) {
    std::printf("joint fine-tune: train loss %.4f -> %.4f\n",
                report.joint_history.front().train_loss,
                report.joint_history.back().train_loss);
  }
  // --calibrate N records int8 activation ranges on the first N training
  // samples; with --precision int8 the saved model then carries the
  // quantized plan and score/info serve int8 out of the box.
  const auto calibrate_n =
      static_cast<std::size_t>(args.get_int("calibrate", 0));
  if (calibrate_n > 0) {
    std::vector<std::int64_t> calib_idx(
        train_idx.begin(),
        train_idx.begin() +
            static_cast<std::ptrdiff_t>(
                std::min(calibrate_n, train_idx.size())));
    pipeline.calibrate(data, calib_idx);
    std::printf("calibrated on %zu samples (serving precision: %s)\n",
                calib_idx.size(), precision_name(pipeline.precision()));
  }
  if (!val_idx.empty()) {
    const auto scores = pipeline.score_all(data, val_idx);
    std::vector<float> labels;
    for (const std::int64_t i : val_idx) {
      labels.push_back(data.is_ia(i) ? 1.0f : 0.0f);
    }
    std::printf("validation AUC: %.3f\n", eval::auc(scores, labels));
    if (pipeline.precision() == Precision::Int8) {
      // Score the same samples at fp32 and report the quantization cost.
      pipeline.set_precision(Precision::Fp32);
      const auto reference = pipeline.score_all(data, val_idx);
      pipeline.set_precision(Precision::Int8);
      const eval::PrecisionParity parity =
          eval::precision_parity(reference, scores, labels);
      std::printf(
          "int8 parity: AUC %+.5f delta (fp32 %.4f, int8 %.4f), "
          "max score drift %.5f\n",
          parity.auc_delta, parity.auc_reference, parity.auc_quantized,
          parity.max_abs_diff);
    }
  }
  pipeline.save(out);
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

int cmd_score(const Args& args) {
  const sim::SnDataset data = sim::load_dataset(args.require("dataset"));
  core::SnePipeline pipeline =
      core::SnePipeline::load(args.require("model"));
  const std::int64_t top = args.get_int("top", 20);
  if (pipeline.precision() == Precision::Int8) {
    std::printf("serving precision: int8 (calibrated)\n");
  }

  std::vector<std::int64_t> all(static_cast<std::size_t>(data.size()));
  std::iota(all.begin(), all.end(), 0);
  const auto scores = pipeline.score_all(data, all);

  std::vector<std::size_t> order(all.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return scores[a] > scores[b];
  });

  eval::TextTable table({"rank", "candidate", "P(SNIa)", "host z"});
  for (std::size_t r = 0;
       r < std::min<std::size_t>(order.size(),
                                 static_cast<std::size_t>(top));
       ++r) {
    const auto i = static_cast<std::int64_t>(order[r]);
    table.add_row({std::to_string(r + 1), std::to_string(i),
                   eval::fmt(scores[order[r]], 3),
                   eval::fmt(data.host(i).photo_z, 2)});
  }
  std::printf("%s", table.to_string().c_str());
  return 0;
}

int cmd_info(const Args& args) {
  if (args.has("dataset")) {
    const sim::SnDataset data = sim::load_dataset(args.get("dataset", ""));
    std::int64_t n_ia = 0;
    for (std::int64_t i = 0; i < data.size(); ++i) {
      if (data.is_ia(i)) ++n_ia;
    }
    std::printf("dataset: %lld samples (%lld SNIa, %lld non-Ia)\n",
                static_cast<long long>(data.size()),
                static_cast<long long>(n_ia),
                static_cast<long long>(data.size() - n_ia));
    std::printf("catalog: %lld galaxies, z in [%.2f, %.2f]\n",
                static_cast<long long>(data.catalog().size()),
                data.config().catalog.z_min, data.config().catalog.z_max);
    std::printf("schedule: %lld epochs/band over %.0f days\n",
                static_cast<long long>(data.config().schedule.epochs_per_band),
                data.config().schedule.season_days);
    return 0;
  }
  if (args.has("model")) {
    core::SnePipeline pipeline =
        core::SnePipeline::load(args.get("model", ""));
    std::printf("pipeline: stamp %lld, hidden units %lld, %lld parameters\n",
                static_cast<long long>(pipeline.config().stamp_size),
                static_cast<long long>(pipeline.config().hidden_units),
                static_cast<long long>(pipeline.joint_model().num_params()));
    std::printf("serving: %s%s\n", precision_name(pipeline.precision()),
                pipeline.is_calibrated() ? " (calibrated for int8)" : "");
    return 0;
  }
  throw std::runtime_error("info needs --dataset or --model");
}

// Renders a generated dataset once through the training pipeline's
// dataset factories and caches the tensors in a .snap file; training and
// benches can then replay epochs from the snapshot (mmap-backed, zero
// render cost) with bitwise-identical batches.
int cmd_snapshot(const Args& args) {
  if (args.has("info")) {
    const std::string path = args.get("info", "");
    const data::SnapshotInfo info = data::read_snapshot_info(path);
    std::string xs, ys;
    for (const auto e : info.x_shape) {
      xs += (xs.empty() ? "" : "x") + std::to_string(e);
    }
    for (const auto e : info.y_shape) {
      ys += (ys.empty() ? "" : "x") + std::to_string(e);
    }
    std::printf("snapshot: v%llu, %lld samples, x %s, y %s (%.1f MiB)\n",
                static_cast<unsigned long long>(info.version),
                static_cast<long long>(info.count), xs.c_str(), ys.c_str(),
                static_cast<double>(info.count) *
                    static_cast<double>(info.x_numel() + info.y_numel()) *
                    sizeof(float) / (1024.0 * 1024.0));
    return 0;
  }
  const sim::SnDataset dataset = sim::load_dataset(args.require("dataset"));
  const std::string out = args.require("out");
  const std::string kind = args.get("kind", "flux");
  const std::int64_t crop = args.get_int("crop", 0);
  const std::int64_t batch = args.get_int("batch", 64);

  std::vector<std::int64_t> all(static_cast<std::size_t>(dataset.size()));
  std::iota(all.begin(), all.end(), 0);

  std::printf("rendering %s snapshot of %lld samples...\n", kind.c_str(),
              static_cast<long long>(dataset.size()));
  if (kind == "flux") {
    auto items = core::enumerate_flux_pairs(dataset, all);
    const nn::LazyDataset pairs =
        core::make_flux_pair_dataset(dataset, std::move(items), crop);
    data::write_snapshot(out, pairs, batch);
  } else if (kind == "joint") {
    const std::int64_t epoch = args.get_int("epoch", 0);
    const nn::LazyDataset joint = core::make_joint_dataset(
        dataset, all, epoch, crop, core::FeatureConfig{});
    data::write_snapshot(out, joint, batch);
  } else {
    throw std::runtime_error("snapshot: unknown --kind " + kind +
                             " (expected flux or joint)");
  }
  const data::SnapshotInfo info = data::read_snapshot_info(out);
  std::printf("wrote %s (%lld samples)\n", out.c_str(),
              static_cast<long long>(info.count));
  return 0;
}

// Shared by stream/serve: the joint-tier session builder over a loaded
// pipeline, honoring the resolved serving precision.
std::function<infer::JointSession()> joint_builder(
    const std::shared_ptr<core::SnePipeline>& pipeline) {
  const Precision precision = pipeline->precision();
  return [pipeline, precision] {
    core::SessionOptions options;
    if (precision == Precision::Int8) {
      options.precision = Precision::Int8;
      options.joint_calibration = &pipeline->calibration();
    }
    return core::make_session(pipeline->joint_model(), options);
  };
}

// Trains the cascade's tier-1 real/bogus CNN on the head of the dataset
// (small model, minutes of work at CLI scale).
std::unique_ptr<stream::Tier1Cnn> train_cli_tier1(const sim::SnDataset& data,
                                                  const Args& args) {
  stream::Tier1Config model;
  model.crop = args.get_int("crop", 21);
  stream::Tier1TrainConfig tc;
  tc.epochs = args.get_int("tier1-epochs", 3);
  tc.seed = static_cast<std::uint64_t>(args.get_int("seed", 2026));
  const auto head = std::min<std::int64_t>(data.size(),
                                           args.get_int("tier1-samples", 48));
  std::vector<std::int64_t> samples(static_cast<std::size_t>(head));
  std::iota(samples.begin(), samples.end(), 0);
  std::printf("training tier-1 real/bogus CNN (crop %lld, %lld epochs, "
              "%zu samples)...\n",
              static_cast<long long>(model.crop),
              static_cast<long long>(tc.epochs), samples.size());
  std::fflush(stdout);
  return stream::train_tier1(data, samples, model, tc);
}

// stream: synthesize one survey night and run the tiered filter cascade
// over it, reporting per-tier recall/rejection/purity and throughput.
int cmd_stream(const Args& args) {
  const sim::SnDataset data = sim::load_dataset(args.require("dataset"));
  auto pipeline = std::make_shared<core::SnePipeline>(
      core::SnePipeline::load(args.require("model")));

  const auto tier1 = train_cli_tier1(data, args);

  stream::NightConfig night_cfg;
  night_cfg.candidates = args.get_int("candidates", 256);
  night_cfg.pool = args.get_int("pool", 64);
  night_cfg.field = args.get_int("field", 32);
  night_cfg.batch = args.get_int("batch", 64);
  night_cfg.stamp = pipeline->config().stamp_size;
  night_cfg.crop = tier1->config().crop;
  night_cfg.real_fraction = args.get_double("real-fraction", 0.5);
  night_cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 2026));

  std::vector<std::int64_t> all(static_cast<std::size_t>(data.size()));
  std::iota(all.begin(), all.end(), 0);
  stream::NightStream night(data, all, night_cfg);

  stream::CascadeConfig cascade_cfg;
  cascade_cfg.stages.push_back(stream::CascadeStage{
      "tier1", stream::compile_tier1_plan(*tier1), stream::AlertInput::Tier1,
      static_cast<float>(args.get_double("tier1-threshold", 0.0)), false});
  cascade_cfg.joint = joint_builder(pipeline);
  cascade_cfg.joint_threshold =
      static_cast<float>(args.get_double("joint-threshold", 0.0));
  cascade_cfg.max_pending = args.get_int("max-pending", 4 * night_cfg.field);

  std::printf("streaming %lld alerts (%lld candidates x 5 bands)...\n",
              static_cast<long long>(night.total_alerts()),
              static_cast<long long>(night_cfg.candidates));
  std::fflush(stdout);
  const auto t0 = std::chrono::steady_clock::now();
  const stream::FilterCascade cascade = stream::run_night(night, cascade_cfg);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const eval::CascadeReport report = eval::cascade_report(cascade.counts());
  std::printf("%s", report.to_string().c_str());
  std::printf("night: %lld alerts in %.2f s (%.0f stamps/s)\n",
              static_cast<long long>(night.total_alerts()), seconds,
              static_cast<double>(night.total_alerts()) / seconds);
  return 0;
}

// serve: the long-running scoring daemon. Signal handling uses the
// self-pipe idiom — the handler only writes one byte; the main thread
// blocks on the read end and runs the graceful drain outside
// signal context.
int g_signal_pipe[2] = {-1, -1};

extern "C" void handle_shutdown_signal(int) {
  const char byte = 1;
  [[maybe_unused]] const auto n = ::write(g_signal_pipe[1], &byte, 1);
}

int cmd_serve(const Args& args) {
  auto pipeline = std::make_shared<core::SnePipeline>(
      core::SnePipeline::load(args.require("model")));

  serve::ScoreServerConfig config;
  config.unix_path = args.get("socket", "");
  config.tcp_host = args.get("host", "127.0.0.1");
  config.tcp_port = static_cast<int>(args.get_int("port", -1));
  if (config.unix_path.empty() && config.tcp_port < 0) {
    config.unix_path = "sne_serve.sock";
  }
  config.workers = static_cast<int>(args.get_int("workers", 1));
  config.batcher.max_batch = args.get_int("max-batch", 16);
  config.batcher.max_delay_us = args.get_int("max-delay-us", 2000);
  config.batcher.max_queue = args.get_int("max-queue", 1024);

  // precision() already resolves the --precision/SNE_PRECISION request
  // against the model: Int8 only when a calibration table was saved.
  const Precision precision = pipeline->precision();
  if (RuntimeConfig::current().precision == Precision::Int8 &&
      precision != Precision::Int8) {
    std::fprintf(stderr,
                 "warning: --precision int8 needs a calibrated model "
                 "(train with --calibrate N); serving fp32\n");
  }
  // Default: serve the joint model directly. --cascade DATASET.snds
  // hosts the full filter cascade instead (tier-1 trained on that
  // dataset; requests then carry joint row + tier-1 crops per row, see
  // docs/FORMATS.md).
  serve::ScorerSpec spec;
  std::shared_ptr<stream::Tier1Cnn> tier1;  // owns the model the plan borrows
  if (args.has("cascade")) {
    const sim::SnDataset cascade_data =
        sim::load_dataset(args.get("cascade", ""));
    tier1 = train_cli_tier1(cascade_data, args);
    stream::CascadeScorerConfig cascade_cfg;
    cascade_cfg.crop = tier1->config().crop;
    cascade_cfg.stages.push_back(stream::CascadeStage{
        "tier1", stream::compile_tier1_plan(*tier1), stream::AlertInput::Tier1,
        static_cast<float>(args.get_double("tier1-threshold", 0.0)), false});
    cascade_cfg.joint = joint_builder(pipeline);
    spec = stream::make_cascade_scorer_spec(cascade_cfg);
  } else {
    spec.joint = joint_builder(pipeline);
  }

  serve::ScoreServer server(config, std::move(spec));

  if (::pipe(g_signal_pipe) != 0) {
    throw std::runtime_error("serve: cannot create signal pipe");
  }
  std::signal(SIGINT, handle_shutdown_signal);
  std::signal(SIGTERM, handle_shutdown_signal);

  server.start();
  if (!config.unix_path.empty()) {
    std::printf("listening on unix socket %s\n", config.unix_path.c_str());
  }
  if (server.tcp_port() >= 0) {
    std::printf("listening on %s:%d\n", config.tcp_host.c_str(),
                server.tcp_port());
  }
  std::printf("serving %s, workers %d, max batch %lld, max delay %lld us "
              "(^C drains and exits)\n",
              precision_name(precision), config.workers,
              static_cast<long long>(config.batcher.max_batch),
              static_cast<long long>(config.batcher.max_delay_us));
  std::fflush(stdout);

  char byte = 0;
  while (::read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
  }
  std::printf("\nshutting down: draining %lld queued requests...\n",
              static_cast<long long>(server.queue_depth()));
  std::fflush(stdout);
  server.stop();
  std::printf("%s", server.stats().to_string().c_str());

  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
  ::close(g_signal_pipe[0]);
  ::close(g_signal_pipe[1]);
  return 0;
}

void print_usage() {
  std::printf(
      "sne — single-epoch supernova classification toolkit\n\n"
      "commands:\n"
      "  generate --samples N --seed S --out FILE.snds [--p-ia 0.5]\n"
      "  train    --dataset FILE.snds --out FILE.snet [--stamp 44]\n"
      "           [--units 100] [--flux-epochs 3] [--flux-pairs 2000]\n"
      "           [--classifier-epochs 30] [--joint-epochs 2] [--seed 1]\n"
      "           [--calibrate N] [--progress]\n"
      "  score    --dataset FILE.snds --model FILE.snet [--top 20]\n"
      "  info     --dataset FILE.snds | --model FILE.snet\n"
      "  snapshot --dataset FILE.snds --out FILE.snap [--kind flux|joint]\n"
      "           [--crop N] [--epoch E] [--batch 64]\n"
      "  snapshot --info FILE.snap\n"
      "  stream   --dataset FILE.snds --model FILE.snet [--candidates 256]\n"
      "           [--pool 64] [--field 32] [--batch 64] [--crop 21]\n"
      "           [--real-fraction 0.5] [--tier1-threshold 0.0]\n"
      "           [--joint-threshold 0.0] [--tier1-epochs 3]\n"
      "           [--tier1-samples 48] [--max-pending 4*field] [--seed 2026]\n"
      "  serve    --model FILE.snet [--socket PATH] [--port N (0=auto)]\n"
      "           [--host 127.0.0.1] [--workers 1] [--max-batch 16]\n"
      "           [--max-delay-us 2000] [--max-queue 1024]\n"
      "           [--cascade FILE.snds [--crop 21] [--tier1-threshold 0.0]]\n\n"
      "global options (any command):\n"
      "  --threads N      worker threads (default: hardware, or "
      "SNE_NUM_THREADS)\n"
      "  --prefetch N     DataLoader prefetch depth (default 1, or "
      "SNE_PREFETCH)\n"
      "  --precision P    serving precision: fp32 (default) or int8 (or\n"
      "                   SNE_PRECISION; int8 needs a calibrated model)\n"
      "  --trace FILE     capture spans, write chrome://tracing JSON\n"
      "  --timing         capture spans, print a summary table on exit\n");
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args args = parse_args(argc, argv);
    const bool traced = apply_runtime_options(args);
    int rc = -1;
    if (args.command == "generate") rc = cmd_generate(args);
    else if (args.command == "train") rc = cmd_train(args);
    else if (args.command == "score") rc = cmd_score(args);
    else if (args.command == "info") rc = cmd_info(args);
    else if (args.command == "snapshot") rc = cmd_snapshot(args);
    else if (args.command == "stream") rc = cmd_stream(args);
    else if (args.command == "serve") rc = cmd_serve(args);
    else if (args.command == "help" || args.command == "--help") {
      print_usage();
      return 0;
    }
    if (rc >= 0) {
      if (traced) report_telemetry(args);
      return rc;
    }
    std::fprintf(stderr, "unknown command: %s\n\n", args.command.c_str());
    print_usage();
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
